// Routing state of a clock tree: one routed Steiner net per driving node.
//
// Every node with children owns a net connecting its output pin to its
// children's input pins. The golden route comes from route::ecoRoute (the
// commercial-router stand-in). Edits to the tree invalidate the nets of the
// touched drivers; callers rebuild them through this class, mirroring the
// paper's "ECO routing" step after every move.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "network/clock_tree.h"
#include "route/route.h"

namespace skewopt::network {

class Routing {
 public:
  /// Fraction of per-edge jog detour the golden router adds (see ecoRoute).
  explicit Routing(double jog_factor = 0.08) : jog_factor_(jog_factor) {}

  /// Rebuilds the net of one driver from current node positions. The net's
  /// pin order matches the driver's children order.
  void rebuildNet(const ClockTree& tree, int driver);

  /// Rebuilds every net in the tree.
  void rebuildAll(const ClockTree& tree);

  /// Rebuilds the nets of the driver and the parents of `id` plus `id`
  /// itself if it drives a net — the set affected by moving/reparenting
  /// `id`.
  void rebuildAround(const ClockTree& tree, int id);

  /// Drops the net of a driver (e.g. after the driver was removed).
  void eraseNet(int driver) {
    ++version_;
    nets_.erase(driver);
  }

  /// Reinstates a previously captured net snapshot verbatim (trial
  /// rollback), including any forced-extra snaking the rebuild dropped.
  void restoreNet(int driver, const route::SteinerTree& net) {
    ++version_;
    nets_[driver] = net;
  }

  /// Net of a driver, or nullptr if the driver has no children.
  const route::SteinerTree* net(int driver) const;

  /// Adds forced snaking length to the edge reaching child pin `pin_idx`
  /// of a driver's net (used by the LP-guided ECO to realize exact
  /// inter-inverter wirelengths and U-shape detours).
  void addExtra(int driver, std::size_t pin_idx, double extra_um);

  /// Current forced-extra length on the edge reaching child pin `pin_idx`.
  double extraOf(int driver, std::size_t pin_idx) const;

  /// Total routed wirelength over all nets (um).
  double totalWirelength() const;

  std::size_t numNets() const { return nets_.size(); }

  /// Monotonic counter bumped by every mutation; paired with
  /// ClockTree::editStamp() it keys timing caches (see sta::CachedTimer).
  std::uint64_t version() const { return version_; }

 private:
  double jog_factor_;
  std::uint64_t version_ = 0;
  std::unordered_map<int, route::SteinerTree> nets_;
};

}  // namespace skewopt::network
