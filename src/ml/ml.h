// Machine-learning substrate for the delta-latency predictor.
//
// The paper trains, per corner, three model families in MATLAB: an
// Artificial Neural Network, an SVM regressor with an RBF kernel, and
// Hybrid Surrogate Modeling (HSM) [Kahng/Lin/Nath, DATE 2013] which blends
// metamodels weighted by their validation accuracy. This module provides
// from-scratch equivalents:
//
//  * MlpRegressor     — feed-forward tanh network trained with Adam and
//                       early stopping on a validation split.
//  * SvrRbf           — epsilon-SVR, RBF kernel, solved in the (bias-free,
//                       target-centered) dual by exact coordinate descent
//                       with soft-thresholding.
//  * HybridSurrogate  — HSM-style inverse-error-weighted blend of the two.
//
// Inputs must be standardized with StandardScaler before training; the
// regressors are deterministic for a fixed seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "geom/geom.h"

namespace skewopt::ml {

/// Dense row-major matrix, sized once.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  const double* row(std::size_t r) const { return &data_[r * cols_]; }
  double* row(std::size_t r) { return &data_[r * cols_]; }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

struct Dataset {
  Matrix x;
  std::vector<double> y;
  std::size_t size() const { return x.rows(); }
};

/// Per-feature standardization (zero mean, unit variance).
class StandardScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  std::vector<double> transformRow(const double* row) const;
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

 private:
  std::vector<double> mean_, scale_;
};

/// Common regressor interface (inputs are pre-scaled feature rows).
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void fit(const Dataset& train) = 0;
  virtual double predict(const double* row) const = 0;
  std::vector<double> predictAll(const Matrix& x) const;
};

// ---------------------------------------------------------------------------

struct MlpOptions {
  std::vector<std::size_t> hidden = {32, 16};
  std::size_t epochs = 400;
  std::size_t batch = 32;
  double learning_rate = 2e-3;
  double l2 = 1e-5;
  double val_fraction = 0.15;
  std::size_t patience = 40;  ///< early-stopping patience (epochs)
  std::uint64_t seed = 7;
};

class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpOptions opts = {}) : opts_(std::move(opts)) {}
  void fit(const Dataset& train) override;
  double predict(const double* row) const override;

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> w, b;       // weights out x in, biases out
    std::vector<double> mw, vw, mb, vb;  // Adam moments
  };
  void forward(const double* row, std::vector<std::vector<double>>* acts) const;

  MlpOptions opts_;
  std::vector<Layer> layers_;
  double y_mean_ = 0.0, y_scale_ = 1.0;
};

// ---------------------------------------------------------------------------

struct SvrOptions {
  double c = 10.0;
  double epsilon = 0.05;     ///< in units of the centered/scaled target
  double gamma = 0.0;        ///< RBF width; 0 = auto (1 / num features)
  std::size_t max_sweeps = 200;
  double tolerance = 1e-4;
  std::size_t max_samples = 2500;  ///< subsample cap (kernel matrix is n^2)
  std::uint64_t seed = 11;
};

class SvrRbf : public Regressor {
 public:
  explicit SvrRbf(SvrOptions opts = {}) : opts_(std::move(opts)) {}
  void fit(const Dataset& train) override;
  double predict(const double* row) const override;
  std::size_t numSupportVectors() const;

 private:
  double kernel(const double* a, const double* b) const;
  SvrOptions opts_;
  Matrix sv_;                  // retained training rows
  std::vector<double> beta_;   // dual coefficients
  double gamma_ = 1.0;
  double y_mean_ = 0.0, y_scale_ = 1.0;
};

// ---------------------------------------------------------------------------

struct HsmOptions {
  MlpOptions mlp;
  SvrOptions svr;
  double val_fraction = 0.2;
  std::uint64_t seed = 13;
};

/// HSM: trains both families, weights them by inverse validation RMSE.
class HybridSurrogate : public Regressor {
 public:
  explicit HybridSurrogate(HsmOptions opts = {}) : opts_(std::move(opts)) {}
  void fit(const Dataset& train) override;
  double predict(const double* row) const override;
  double mlpWeight() const { return w_mlp_; }

 private:
  HsmOptions opts_;
  std::unique_ptr<MlpRegressor> mlp_;
  std::unique_ptr<SvrRbf> svr_;
  double w_mlp_ = 0.5;
};

// ---------------------------------------------------------------------------

/// Trivial baseline used in tests: predicts the training mean.
class MeanRegressor : public Regressor {
 public:
  void fit(const Dataset& train) override;
  double predict(const double*) const override { return mean_; }

 private:
  double mean_ = 0.0;
};

// ---- metrics & utilities --------------------------------------------------

double rmse(const std::vector<double>& pred, const std::vector<double>& truth);
double meanAbsError(const std::vector<double>& pred,
                    const std::vector<double>& truth);
/// Mean absolute percentage error with a floor on |truth| to avoid blowups.
double mape(const std::vector<double>& pred, const std::vector<double>& truth,
            double floor_abs = 1.0);

/// Deterministic train/validation split.
void splitDataset(const Dataset& all, double val_fraction, std::uint64_t seed,
                  Dataset* train, Dataset* val);

/// K-fold cross-validated RMSE of a regressor factory.
template <typename MakeRegressor>
double kfoldRmse(const Dataset& all, std::size_t folds, MakeRegressor make) {
  const std::size_t n = all.size();
  if (n < folds || folds < 2) return 0.0;
  double total_sq = 0.0;
  std::size_t count = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    Dataset train, test;
    const std::size_t d = all.x.cols();
    std::vector<std::size_t> tr, te;
    for (std::size_t i = 0; i < n; ++i)
      (i % folds == f ? te : tr).push_back(i);
    train.x = Matrix(tr.size(), d);
    test.x = Matrix(te.size(), d);
    for (std::size_t i = 0; i < tr.size(); ++i) {
      for (std::size_t j = 0; j < d; ++j)
        train.x.at(i, j) = all.x.at(tr[i], j);
      train.y.push_back(all.y[tr[i]]);
    }
    for (std::size_t i = 0; i < te.size(); ++i) {
      for (std::size_t j = 0; j < d; ++j) test.x.at(i, j) = all.x.at(te[i], j);
      test.y.push_back(all.y[te[i]]);
    }
    auto reg = make();
    reg->fit(train);
    const std::vector<double> pred = reg->predictAll(test.x);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      const double e = pred[i] - test.y[i];
      total_sq += e * e;
      ++count;
    }
  }
  return count ? std::sqrt(total_sq / static_cast<double>(count)) : 0.0;
}

}  // namespace skewopt::ml
