// epsilon-SVR with an RBF kernel.
//
// Trained in the bias-free dual (targets are centered, and the RBF kernel
// is universal, so the explicit bias term of classical SVR is unnecessary):
//
//   min over beta in [-C, C]^n:
//       1/2 beta' K beta - beta' y + epsilon * |beta|_1
//
// solved by exact cyclic coordinate descent: each coordinate update is a
// soft-threshold followed by a box clip, which is the global minimizer of
// the one-dimensional subproblem, so the objective decreases monotonically.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/ml.h"

namespace skewopt::ml {

double SvrRbf::kernel(const double* a, const double* b) const {
  double s = 0.0;
  for (std::size_t j = 0; j < sv_.cols(); ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return std::exp(-gamma_ * s);
}

void SvrRbf::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("SvrRbf: empty data");
  const std::size_t d = train.x.cols();
  gamma_ = (opts_.gamma > 0.0) ? opts_.gamma : 1.0 / static_cast<double>(d);

  // Deterministic subsample if the kernel matrix would be too large.
  std::size_t n = train.size();
  std::vector<std::size_t> keep(n);
  std::iota(keep.begin(), keep.end(), std::size_t{0});
  if (n > opts_.max_samples) {
    geom::Rng rng(opts_.seed);
    for (std::size_t i = n; i-- > 1;) std::swap(keep[i], keep[rng.index(i + 1)]);
    keep.resize(opts_.max_samples);
    std::sort(keep.begin(), keep.end());
    n = opts_.max_samples;
  }

  sv_ = Matrix(n, d);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) sv_.at(i, j) = train.x.at(keep[i], j);
    y[i] = train.y[keep[i]];
  }
  y_mean_ = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double var = 0.0;
  for (double& v : y) {
    v -= y_mean_;
    var += v * v;
  }
  y_scale_ = std::sqrt(var / static_cast<double>(n));
  if (y_scale_ < 1e-12) y_scale_ = 1.0;
  for (double& v : y) v /= y_scale_;

  // Dense kernel matrix (bounded by max_samples^2).
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k.at(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = kernel(sv_.row(i), sv_.row(j));
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
  }

  beta_.assign(n, 0.0);
  std::vector<double> f(n, 0.0);  // f_i = (K beta)_i, maintained incrementally
  for (std::size_t sweep = 0; sweep < opts_.max_sweeps; ++sweep) {
    double max_change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // One-dimensional objective in t = beta_i:
      //   1/2 K_ii t^2 + r t + epsilon |t|,   r = f_i - K_ii beta_i - y_i
      const double kii = k.at(i, i);
      const double r = f[i] - kii * beta_[i] - y[i];
      double t;
      if (r > opts_.epsilon)
        t = -(r - opts_.epsilon) / kii;
      else if (r < -opts_.epsilon)
        t = -(r + opts_.epsilon) / kii;
      else
        t = 0.0;
      t = std::clamp(t, -opts_.c, opts_.c);
      const double delta = t - beta_[i];
      if (std::abs(delta) > 1e-14) {
        beta_[i] = t;
        const double* krow = k.row(i);
        for (std::size_t j = 0; j < n; ++j) f[j] += delta * krow[j];
        max_change = std::max(max_change, std::abs(delta));
      }
    }
    if (max_change < opts_.tolerance) break;
  }

  // Compact: drop non-support vectors to speed up prediction.
  std::size_t nsv = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (std::abs(beta_[i]) > 1e-10) ++nsv;
  if (nsv < n) {
    Matrix sv2(nsv, d);
    std::vector<double> b2;
    b2.reserve(nsv);
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(beta_[i]) <= 1e-10) continue;
      for (std::size_t j = 0; j < d; ++j) sv2.at(w, j) = sv_.at(i, j);
      b2.push_back(beta_[i]);
      ++w;
    }
    sv_ = std::move(sv2);
    beta_ = std::move(b2);
  }
}

double SvrRbf::predict(const double* row) const {
  double s = 0.0;
  for (std::size_t i = 0; i < sv_.rows(); ++i)
    s += beta_[i] * kernel(sv_.row(i), row);
  return s * y_scale_ + y_mean_;
}

std::size_t SvrRbf::numSupportVectors() const { return sv_.rows(); }

}  // namespace skewopt::ml
