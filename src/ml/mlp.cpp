// Feed-forward tanh MLP trained with Adam and early stopping.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/ml.h"

namespace skewopt::ml {

namespace {
double tanhAct(double v) { return std::tanh(v); }
double tanhGrad(double a) { return 1.0 - a * a; }  // in terms of activation
}  // namespace

void MlpRegressor::forward(const double* row,
                           std::vector<std::vector<double>>* acts) const {
  // acts[0] is the input; acts[l+1] the activation of layer l. The last
  // layer is linear.
  std::vector<double> cur(row, row + layers_.front().in);
  acts->clear();
  acts->push_back(cur);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& L = layers_[l];
    std::vector<double> next(L.out);
    for (std::size_t o = 0; o < L.out; ++o) {
      double v = L.b[o];
      const double* w = &L.w[o * L.in];
      for (std::size_t i = 0; i < L.in; ++i) v += w[i] * cur[i];
      next[o] = (l + 1 == layers_.size()) ? v : tanhAct(v);
    }
    acts->push_back(next);
    cur = acts->back();
  }
}

void MlpRegressor::fit(const Dataset& all) {
  if (all.size() == 0) throw std::invalid_argument("MlpRegressor: empty data");
  const std::size_t d = all.x.cols();

  // Center/scale the target internally so the loss is well-conditioned.
  y_mean_ = std::accumulate(all.y.begin(), all.y.end(), 0.0) /
            static_cast<double>(all.y.size());
  double var = 0.0;
  for (const double y : all.y) var += (y - y_mean_) * (y - y_mean_);
  y_scale_ = std::sqrt(var / static_cast<double>(all.y.size()));
  if (y_scale_ < 1e-12) y_scale_ = 1.0;

  Dataset train, val;
  splitDataset(all, opts_.val_fraction, opts_.seed, &train, &val);
  if (train.size() == 0) train = all;

  // Layer setup with Xavier-style init.
  geom::Rng rng(opts_.seed);
  layers_.clear();
  std::vector<std::size_t> sizes = {d};
  for (const std::size_t h : opts_.hidden) sizes.push_back(h);
  sizes.push_back(1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer L;
    L.in = sizes[l];
    L.out = sizes[l + 1];
    L.w.resize(L.in * L.out);
    L.b.assign(L.out, 0.0);
    const double s = std::sqrt(2.0 / static_cast<double>(L.in + L.out));
    for (double& w : L.w) w = rng.normal(0.0, s);
    L.mw.assign(L.w.size(), 0.0);
    L.vw.assign(L.w.size(), 0.0);
    L.mb.assign(L.out, 0.0);
    L.vb.assign(L.out, 0.0);
    layers_.push_back(std::move(L));
  }

  const std::size_t n = train.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  auto valLoss = [&]() {
    if (val.size() == 0) return 0.0;
    std::vector<std::vector<double>> acts;
    double s = 0.0;
    for (std::size_t i = 0; i < val.size(); ++i) {
      forward(val.x.row(i), &acts);
      const double p = acts.back()[0];
      const double t = (val.y[i] - y_mean_) / y_scale_;
      s += (p - t) * (p - t);
    }
    return s / static_cast<double>(val.size());
  };

  std::vector<Layer> best_layers = layers_;
  double best_val = valLoss();
  std::size_t since_best = 0;
  std::size_t step = 0;
  std::vector<std::vector<double>> acts;
  std::vector<std::vector<double>> delta(layers_.size());

  for (std::size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    // Deterministic shuffle per epoch.
    for (std::size_t i = n; i-- > 1;) std::swap(order[i], order[rng.index(i + 1)]);

    for (std::size_t start = 0; start < n; start += opts_.batch) {
      const std::size_t end = std::min(n, start + opts_.batch);
      // Accumulate gradients over the batch.
      std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        gw[l].assign(layers_[l].w.size(), 0.0);
        gb[l].assign(layers_[l].out, 0.0);
      }
      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t i = order[bi];
        forward(train.x.row(i), &acts);
        const double target = (train.y[i] - y_mean_) / y_scale_;
        const double err = acts.back()[0] - target;
        // Backprop.
        delta.back() = {err};
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& L = layers_[l];
          const std::vector<double>& in = acts[l];
          const std::vector<double>& dl = delta[l];
          for (std::size_t o = 0; o < L.out; ++o) {
            gb[l][o] += dl[o];
            double* g = &gw[l][o * L.in];
            for (std::size_t ii = 0; ii < L.in; ++ii) g[ii] += dl[o] * in[ii];
          }
          if (l == 0) break;
          std::vector<double>& dprev = delta[l - 1];
          dprev.assign(L.in, 0.0);
          for (std::size_t o = 0; o < L.out; ++o) {
            const double* w = &L.w[o * L.in];
            for (std::size_t ii = 0; ii < L.in; ++ii)
              dprev[ii] += dl[o] * w[ii];
          }
          for (std::size_t ii = 0; ii < L.in; ++ii)
            dprev[ii] *= tanhGrad(acts[l][ii]);
        }
      }
      // Adam step.
      ++step;
      const double bsz = static_cast<double>(end - start);
      const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
      const double bc1 = 1.0 - std::pow(b1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(b2, static_cast<double>(step));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& L = layers_[l];
        for (std::size_t k = 0; k < L.w.size(); ++k) {
          const double g = gw[l][k] / bsz + opts_.l2 * L.w[k];
          L.mw[k] = b1 * L.mw[k] + (1 - b1) * g;
          L.vw[k] = b2 * L.vw[k] + (1 - b2) * g * g;
          L.w[k] -= opts_.learning_rate * (L.mw[k] / bc1) /
                    (std::sqrt(L.vw[k] / bc2) + eps);
        }
        for (std::size_t k = 0; k < L.out; ++k) {
          const double g = gb[l][k] / bsz;
          L.mb[k] = b1 * L.mb[k] + (1 - b1) * g;
          L.vb[k] = b2 * L.vb[k] + (1 - b2) * g * g;
          L.b[k] -= opts_.learning_rate * (L.mb[k] / bc1) /
                    (std::sqrt(L.vb[k] / bc2) + eps);
        }
      }
    }

    if (val.size() > 0) {
      const double vl = valLoss();
      if (vl < best_val - 1e-9) {
        best_val = vl;
        best_layers = layers_;
        since_best = 0;
      } else if (++since_best >= opts_.patience) {
        break;  // early stop
      }
    }
  }
  if (val.size() > 0) layers_ = best_layers;
}

double MlpRegressor::predict(const double* row) const {
  if (layers_.empty()) return y_mean_;
  std::vector<std::vector<double>> acts;
  forward(row, &acts);
  return acts.back()[0] * y_scale_ + y_mean_;
}

}  // namespace skewopt::ml
