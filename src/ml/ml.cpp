// Scaler, metrics, dataset utilities, HSM and the mean baseline.
#include "ml/ml.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace skewopt::ml {

void StandardScaler::fit(const Matrix& x) {
  const std::size_t n = x.rows(), d = x.cols();
  if (n == 0) throw std::invalid_argument("StandardScaler::fit: empty data");
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += x.at(i, j);
  for (std::size_t j = 0; j < d; ++j) mean_[j] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j) {
      const double e = x.at(i, j) - mean_[j];
      var[j] += e * e;
    }
  for (std::size_t j = 0; j < d; ++j) {
    const double s = std::sqrt(var[j] / static_cast<double>(n));
    scale_[j] = (s > 1e-12) ? s : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  Matrix out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j)
      out.at(i, j) = (x.at(i, j) - mean_[j]) / scale_[j];
  return out;
}

std::vector<double> StandardScaler::transformRow(const double* row) const {
  std::vector<double> out(mean_.size());
  for (std::size_t j = 0; j < mean_.size(); ++j)
    out[j] = (row[j] - mean_[j]) / scale_[j];
  return out;
}

std::vector<double> Regressor::predictAll(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict(x.row(i));
  return out;
}

void MeanRegressor::fit(const Dataset& train) {
  mean_ = train.y.empty()
              ? 0.0
              : std::accumulate(train.y.begin(), train.y.end(), 0.0) /
                    static_cast<double>(train.y.size());
}

double rmse(const std::vector<double>& pred,
            const std::vector<double>& truth) {
  if (pred.size() != truth.size() || pred.empty())
    throw std::invalid_argument("rmse: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - truth[i];
    s += e * e;
  }
  return std::sqrt(s / static_cast<double>(pred.size()));
}

double meanAbsError(const std::vector<double>& pred,
                    const std::vector<double>& truth) {
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    s += std::abs(pred[i] - truth[i]);
  return pred.empty() ? 0.0 : s / static_cast<double>(pred.size());
}

double mape(const std::vector<double>& pred, const std::vector<double>& truth,
            double floor_abs) {
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    s += std::abs(pred[i] - truth[i]) /
         std::max(std::abs(truth[i]), floor_abs);
  return pred.empty() ? 0.0 : 100.0 * s / static_cast<double>(pred.size());
}

void splitDataset(const Dataset& all, double val_fraction, std::uint64_t seed,
                  Dataset* train, Dataset* val) {
  const std::size_t n = all.size(), d = all.x.cols();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  geom::Rng rng(seed);
  for (std::size_t i = n; i-- > 1;)
    std::swap(idx[i], idx[rng.index(i + 1)]);
  const std::size_t nval =
      std::min(n > 1 ? n - 1 : 0,
               static_cast<std::size_t>(val_fraction * static_cast<double>(n)));
  auto fill = [&](Dataset* out, std::size_t lo, std::size_t hi) {
    out->x = Matrix(hi - lo, d);
    out->y.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < d; ++j)
        out->x.at(i - lo, j) = all.x.at(idx[i], j);
      out->y.push_back(all.y[idx[i]]);
    }
  };
  fill(val, 0, nval);
  fill(train, nval, n);
}

void HybridSurrogate::fit(const Dataset& train) {
  Dataset tr, val;
  splitDataset(train, opts_.val_fraction, opts_.seed, &tr, &val);
  if (val.size() < 4) {  // too small to weight: train on everything, 50/50
    tr = train;
    val = train;
  }
  mlp_ = std::make_unique<MlpRegressor>(opts_.mlp);
  svr_ = std::make_unique<SvrRbf>(opts_.svr);
  mlp_->fit(tr);
  svr_->fit(tr);
  const double e_mlp = rmse(mlp_->predictAll(val.x), val.y);
  const double e_svr = rmse(svr_->predictAll(val.x), val.y);
  const double inv_mlp = 1.0 / (e_mlp + 1e-9);
  const double inv_svr = 1.0 / (e_svr + 1e-9);
  w_mlp_ = inv_mlp / (inv_mlp + inv_svr);
  // Refit both on the full training set with the weights locked.
  mlp_ = std::make_unique<MlpRegressor>(opts_.mlp);
  svr_ = std::make_unique<SvrRbf>(opts_.svr);
  mlp_->fit(train);
  svr_->fit(train);
}

double HybridSurrogate::predict(const double* row) const {
  return w_mlp_ * mlp_->predict(row) + (1.0 - w_mlp_) * svr_->predict(row);
}

}  // namespace skewopt::ml
