#include "obs/recorder.h"

#include <stdexcept>

#include "obs/metrics.h"  // detail::formatDouble
#include "obs/trace.h"    // detail::appendJsonString

namespace skewopt::obs {

namespace {
thread_local FlightRecorder* t_recorder = nullptr;
}  // namespace

FlightRecorder* currentFlightRecorder() { return t_recorder; }

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder* rec)
    : prev_(t_recorder) {
  t_recorder = rec;
}

ScopedFlightRecorder::~ScopedFlightRecorder() { t_recorder = prev_; }

FlightRecorder::FlightRecorder() {
  // push_back, not `buf_ = "{"`: the C-string assignment trips GCC 12's
  // -Wrestrict false positive (PR105329) under -Werror.
  buf_.push_back('{');
  first_.push_back(true);
}

void FlightRecorder::comma() {
  if (first_.back())
    first_.back() = false;
  else
    buf_ += ',';
}

void FlightRecorder::member(const char* key) {
  comma();
  detail::appendJsonString(buf_, key);
  buf_ += ':';
}

FlightRecorder& FlightRecorder::beginObject(const char* key) {
  member(key);
  buf_ += '{';
  first_.push_back(true);
  return *this;
}

FlightRecorder& FlightRecorder::beginObject() {
  comma();
  buf_ += '{';
  first_.push_back(true);
  return *this;
}

FlightRecorder& FlightRecorder::endObject() {
  if (first_.size() <= 1)
    throw std::logic_error("FlightRecorder: endObject without begin");
  buf_ += '}';
  first_.pop_back();
  return *this;
}

FlightRecorder& FlightRecorder::beginArray(const char* key) {
  member(key);
  buf_ += '[';
  first_.push_back(true);
  return *this;
}

FlightRecorder& FlightRecorder::endArray() {
  if (first_.size() <= 1)
    throw std::logic_error("FlightRecorder: endArray without begin");
  buf_ += ']';
  first_.pop_back();
  return *this;
}

FlightRecorder& FlightRecorder::field(const char* key, double v) {
  member(key);
  buf_ += detail::formatDouble(v);
  return *this;
}

FlightRecorder& FlightRecorder::field(const char* key, std::int64_t v) {
  member(key);
  buf_ += std::to_string(v);
  return *this;
}

FlightRecorder& FlightRecorder::field(const char* key, bool v) {
  member(key);
  buf_ += v ? "true" : "false";
  return *this;
}

FlightRecorder& FlightRecorder::field(const char* key, const char* v) {
  member(key);
  detail::appendJsonString(buf_, v);
  return *this;
}

FlightRecorder& FlightRecorder::value(double v) {
  comma();
  buf_ += detail::formatDouble(v);
  return *this;
}

FlightRecorder& FlightRecorder::value(std::int64_t v) {
  comma();
  buf_ += std::to_string(v);
  return *this;
}

std::string FlightRecorder::json() const {
  if (first_.size() != 1)
    throw std::logic_error("FlightRecorder: unbalanced document");
  return buf_ + "}";
}

}  // namespace skewopt::obs
