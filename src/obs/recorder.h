// Per-job optimization flight recorder: a deterministic JSON document of
// the algorithmic trajectory of one Flow::run — per-U-point LP effort in
// the global stage, per-round trials and accepted moves in the local
// stage, and the skew-variation curve per corner.
//
// Determinism contract: everything appended must be a pure function of
// the job spec — algorithm state only, never wall-clock durations or
// thread identity — so the recorded document is bit-identical between
// serial and parallel runs and between 1-shard and 3-shard execution
// (the differential tests pin this). Doubles render via
// obs::detail::formatDouble (shortest round-trip, locale-free).
//
// Threading: a recorder has a single writer — the thread orchestrating
// the flow. The optimizers reach it through the thread-local
// currentFlightRecorder() installed by ScopedFlightRecorder, so the
// recording hooks cost one thread-local load when recording is off and
// nothing is threaded through the optimizer APIs. Appends from pool
// workers are a bug; record on the orchestrating thread after joins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace skewopt::obs {

/// Streaming builder for one job's flight record. The root object is
/// opened by the constructor; json() closes it. Callers must balance
/// every begin* with the matching end* — json() throws std::logic_error
/// on an unbalanced document (a recording-site bug, not an input error).
class FlightRecorder {
 public:
  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Opens an object as a member of the enclosing object...
  FlightRecorder& beginObject(const char* key);
  /// ...or as an element of the enclosing array.
  FlightRecorder& beginObject();
  FlightRecorder& endObject();
  FlightRecorder& beginArray(const char* key);
  FlightRecorder& endArray();

  FlightRecorder& field(const char* key, double v);
  FlightRecorder& field(const char* key, std::int64_t v);
  FlightRecorder& field(const char* key, bool v);
  FlightRecorder& field(const char* key, const char* v);
  /// Array elements.
  FlightRecorder& value(double v);
  FlightRecorder& value(std::int64_t v);

  /// The completed document (root object closed). Throws std::logic_error
  /// when begin/end calls are unbalanced.
  std::string json() const;

 private:
  void comma();
  void member(const char* key);

  std::string buf_;
  std::vector<bool> first_;  ///< per open scope: no element emitted yet
};

/// The calling thread's active recorder (nullptr = recording off).
FlightRecorder* currentFlightRecorder();

/// Installs `rec` as the thread's active recorder for the enclosing
/// scope, restoring the previous one on destruction. Passing nullptr
/// masks any outer recorder.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder* rec);
  ~ScopedFlightRecorder();
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* prev_;
};

}  // namespace skewopt::obs
