#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"  // detail::formatDouble

namespace skewopt::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};

void appendJsonString(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}
}  // namespace detail

namespace {

thread_local std::uint32_t t_span_depth = 0;
thread_local std::uint64_t t_trace_id = 0;

obs::Counter& droppedSpansTotal() {
  static obs::Counter& c = MetricsRegistry::global().counter(
      "skewopt_trace_spans_dropped_total",
      "Spans evicted from the trace ring buffers by wrap-around");
  return c;
}

std::size_t clampRingSlots(std::size_t n) {
  return std::min<std::size_t>(std::max<std::size_t>(n, 64), 1u << 22);
}

/// Ring capacity for the global tracer: SKEWOPT_TRACE_CAPACITY when set to
/// a positive integer, the compile-time default otherwise. Read once.
std::size_t globalRingSlots() {
  const char* env = std::getenv("SKEWOPT_TRACE_CAPACITY");
  if (env == nullptr || *env == '\0') return kTraceRingSlots;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return kTraceRingSlots;
  return clampRingSlots(static_cast<std::size_t>(v));
}

}  // namespace

std::uint64_t currentTraceId() { return t_trace_id; }

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id)
    : prev_(t_trace_id) {
  t_trace_id = trace_id;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_id = prev_; }

std::uint64_t traceIdFor(std::uint64_t content_hash, std::uint64_t job_id) {
  // splitmix64 finalizer over (hash, id); never returns 0 (the "no
  // context" sentinel).
  std::uint64_t x = content_hash ^ (job_id + 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

std::string traceIdHex(std::uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

// Per-slot seqlock: while the slot holds completed ticket t its sequence
// word reads 2t+2 (even, unique — tickets are monotonic); while the owner
// thread is writing ticket t it reads 2t+1. The single-writer protocol and
// the matching reader are in emit() / readSlot() below. Instead of the
// classic two thread fences (which GCC's TSan pass neither models nor
// compiles warning-free), every payload field is a release-stored /
// acquire-loaded atomic: a reader that observes any payload value from
// write t synchronizes with its store, so the odd sequence word written
// before it happens-before the reader's re-check of seq, and coherence
// forces the re-check to see the mismatch and drop the torn slot.
struct Tracer::ThreadBuffer {
  struct SlotArg {
    std::atomic<const char*> key{nullptr};
    std::atomic<std::uint8_t> type{0};
    std::atomic<std::uint64_t> bits{0};
  };
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint32_t> depth{0};
    std::atomic<std::uint64_t> trace_id{0};
    SlotArg args[kMaxSpanArgs];
  };

  explicit ThreadBuffer(std::size_t ring_slots)
      : capacity(ring_slots), slots(new Slot[ring_slots]) {}

  std::uint32_t id = 0;
  std::uint64_t next_ticket = 0;  // owner thread only
  const std::size_t capacity;
  std::atomic<std::uint64_t> dropped{0};  ///< spans evicted by wrap-around
  std::unique_ptr<Slot[]> slots;          ///< capacity entries

  void emit(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
            std::uint32_t depth, std::uint64_t trace_id,
            const TraceEvent::Arg* args, int nargs) {
    const std::uint64_t t = next_ticket++;
    if (t >= capacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      droppedSpansTotal().add();
    }
    Slot& s = slots[t % capacity];
    s.seq.store(2 * t + 1, std::memory_order_relaxed);
    s.name.store(name, std::memory_order_release);
    s.start_ns.store(start_ns, std::memory_order_release);
    s.dur_ns.store(dur_ns, std::memory_order_release);
    s.depth.store(depth, std::memory_order_release);
    s.trace_id.store(trace_id, std::memory_order_release);
    for (int i = 0; i < kMaxSpanArgs; ++i) {
      if (i < nargs) {
        s.args[i].key.store(args[i].key, std::memory_order_release);
        s.args[i].type.store(static_cast<std::uint8_t>(args[i].type),
                             std::memory_order_release);
        std::uint64_t bits = 0;
        switch (args[i].type) {
          case TraceEvent::ArgType::kInt:
            bits = std::bit_cast<std::uint64_t>(args[i].i);
            break;
          case TraceEvent::ArgType::kFloat:
            bits = std::bit_cast<std::uint64_t>(args[i].f);
            break;
          case TraceEvent::ArgType::kBool:
            bits = args[i].b ? 1 : 0;
            break;
          case TraceEvent::ArgType::kNone:
            break;
        }
        s.args[i].bits.store(bits, std::memory_order_release);
      } else {
        s.args[i].key.store(nullptr, std::memory_order_release);
        s.args[i].type.store(0, std::memory_order_release);
      }
    }
    s.seq.store(2 * t + 2, std::memory_order_release);
  }

  /// Seqlock read. Returns true iff the slot held one consistent,
  /// completed span for the whole read.
  bool readSlot(std::size_t i, TraceEvent* out) const {
    const Slot& s = slots[i];
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) return false;
    out->name = s.name.load(std::memory_order_acquire);
    out->ts_ns = s.start_ns.load(std::memory_order_acquire);
    out->dur_ns = s.dur_ns.load(std::memory_order_acquire);
    out->depth = s.depth.load(std::memory_order_acquire);
    out->trace_id = s.trace_id.load(std::memory_order_acquire);
    for (int a = 0; a < kMaxSpanArgs; ++a) {
      out->args[a].key = s.args[a].key.load(std::memory_order_acquire);
      out->args[a].type = static_cast<TraceEvent::ArgType>(
          s.args[a].type.load(std::memory_order_acquire));
      const std::uint64_t bits =
          s.args[a].bits.load(std::memory_order_acquire);
      switch (out->args[a].type) {
        case TraceEvent::ArgType::kInt:
          out->args[a].i = std::bit_cast<std::int64_t>(bits);
          break;
        case TraceEvent::ArgType::kFloat:
          out->args[a].f = std::bit_cast<double>(bits);
          break;
        case TraceEvent::ArgType::kBool:
          out->args[a].b = bits != 0;
          break;
        case TraceEvent::ArgType::kNone:
          out->args[a].key = nullptr;
          break;
      }
    }
    if (s.seq.load(std::memory_order_acquire) != s1) return false;
    out->tid = id;
    out->ticket = s1 / 2 - 1;
    return true;
  }
};

Tracer::Tracer(TraceOptions opts) : opts_(opts) {
  opts_.ring_slots = clampRingSlots(opts_.ring_slots);
}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer* tracer =
      new Tracer(TraceOptions{globalRingSlots()});  // never destroyed
  return *tracer;
}

void Tracer::start() {
  if (start_count_.fetch_add(1, std::memory_order_relaxed) == 0)
    detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::stop() {
  if (start_count_.fetch_sub(1, std::memory_order_relaxed) == 1)
    detail::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t Tracer::droppedSpans() const {
  support::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& b : buffers_)
    total += b->dropped.load(std::memory_order_relaxed);
  return total;
}

Tracer::ThreadBuffer& Tracer::localBuffer() {
  // Cached per (thread, tracer); buffers are owned by the tracer and live
  // as long as it does, so dead threads' spans stay exportable.
  thread_local std::vector<std::pair<Tracer*, ThreadBuffer*>> t_cache;
  for (const auto& [tracer, buf] : t_cache)
    if (tracer == this) return *buf;
  support::MutexLock lock(mu_);
  auto buf = std::make_unique<ThreadBuffer>(opts_.ring_slots);
  buf->id = static_cast<std::uint32_t>(buffers_.size());
  ThreadBuffer* raw = buf.get();
  buffers_.push_back(std::move(buf));
  t_cache.emplace_back(this, raw);
  return *raw;
}

void Tracer::emitEvent(const char* name, std::uint64_t start_ns,
                       std::uint64_t dur_ns) {
  if (!tracingOn()) return;
  localBuffer().emit(name, start_ns, dur_ns, t_span_depth, t_trace_id,
                     nullptr, 0);
}

std::vector<TraceEvent> Tracer::collect(std::uint64_t since_ns,
                                        std::uint64_t trace_id) const {
  std::vector<ThreadBuffer*> bufs;
  {
    support::MutexLock lock(mu_);
    bufs.reserve(buffers_.size());
    for (const auto& b : buffers_) bufs.push_back(b.get());
  }
  std::vector<TraceEvent> events;
  for (const ThreadBuffer* b : bufs) {
    for (std::size_t i = 0; i < b->capacity; ++i) {
      TraceEvent ev;
      if (b->readSlot(i, &ev) && ev.ts_ns >= since_ns &&
          (trace_id == 0 || ev.trace_id == trace_id))
        events.push_back(ev);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.ticket < b.ticket;
            });
  return events;
}

namespace {

// Nanoseconds as a microsecond decimal with exact .3 fraction.
std::string microsFromNs(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

std::string Tracer::exportJson(std::uint64_t since_ns,
                               std::uint64_t trace_id) const {
  const std::vector<TraceEvent> events = collect(since_ns, trace_id);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    detail::appendJsonString(out, ev.name);
    out += ",\"cat\":\"skewopt\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(ev.tid) + ",\"ts\":" + microsFromNs(ev.ts_ns) +
           ",\"dur\":" + microsFromNs(ev.dur_ns) + ",\"args\":{\"depth\":" +
           std::to_string(ev.depth);
    if (ev.trace_id != 0) {
      out += ",\"trace_id\":";
      detail::appendJsonString(out, traceIdHex(ev.trace_id).c_str());
    }
    for (const TraceEvent::Arg& a : ev.args) {
      if (a.type == TraceEvent::ArgType::kNone || a.key == nullptr) continue;
      out += ',';
      detail::appendJsonString(out, a.key);
      out += ':';
      switch (a.type) {
        case TraceEvent::ArgType::kInt:
          out += std::to_string(a.i);
          break;
        case TraceEvent::ArgType::kFloat:
          out += detail::formatDouble(a.f);
          break;
        case TraceEvent::ArgType::kBool:
          out += a.b ? "true" : "false";
          break;
        case TraceEvent::ArgType::kNone:
          break;
      }
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

bool Tracer::writeJsonFile(const std::string& path, std::uint64_t since_ns,
                           std::string* error) const {
  const std::string json = exportJson(since_ns);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr)
      *error = path + ": " + std::strerror(errno);
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error != nullptr) *error = path + ": write failed";
    return false;
  }
  return true;
}

Span::Span(const char* name) {
  if (!tracingOn()) return;
  active_ = true;
  name_ = name;
  depth_ = t_span_depth++;
  trace_id_ = t_trace_id;
  start_ns_ = nowNs();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_ns = nowNs();
  --t_span_depth;
  Tracer::global().localBuffer().emit(
      name_, start_ns_, end_ns - start_ns_, depth_, trace_id_, args_, nargs_);
}

void Span::arg(const char* key, std::int64_t v) {
  if (!active_ || nargs_ >= kMaxSpanArgs) return;
  args_[nargs_].key = key;
  args_[nargs_].type = TraceEvent::ArgType::kInt;
  args_[nargs_].i = v;
  ++nargs_;
}

void Span::arg(const char* key, double v) {
  if (!active_ || nargs_ >= kMaxSpanArgs) return;
  args_[nargs_].key = key;
  args_[nargs_].type = TraceEvent::ArgType::kFloat;
  args_[nargs_].f = v;
  ++nargs_;
}

void Span::arg(const char* key, bool v) {
  if (!active_ || nargs_ >= kMaxSpanArgs) return;
  args_[nargs_].key = key;
  args_[nargs_].type = TraceEvent::ArgType::kBool;
  args_[nargs_].b = v;
  ++nargs_;
}

}  // namespace skewopt::obs
