// Structured logging: leveled JSON-lines events with typed fields.
//
// One log line is one strict-JSON object:
//
//   {"ts_ns":5000000,"level":"info","msg":"serve: job done","job_id":7,...}
//
// Timestamps come from obs::nowNs(), so with a fake clock injected
// (setClockForTest) every line is byte-deterministic — the property the
// log tests pin. The sink is process-global (Logger::global()), defaults
// to off, and is pointed at stderr or a file via configure() (surfaced as
// --log / --log-level on skewopt_served and skewopt_cli).
//
// Hot-path contract: constructing a LogEvent below the configured level
// costs one relaxed atomic load and nothing else. Emission takes the
// logger mutex; an optional per-second line budget sheds load under a
// log storm (dropped lines are counted, never silently discarded).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "support/thread_annotations.h"

namespace skewopt::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3,
                            kOff = 4 };

const char* logLevelName(LogLevel lvl);
/// Parses "debug"|"info"|"warn"|"error"|"off"; false on anything else.
bool parseLogLevel(const std::string& text, LogLevel* out);

class Logger {
 public:
  struct Options {
    LogLevel level = LogLevel::kOff;
    /// Sink path; empty means stderr.
    std::string path;
    /// Max lines written per wall-clock second (0 = unlimited); lines
    /// over budget are dropped and counted in droppedLines().
    std::size_t max_lines_per_sec = 0;
  };

  /// The process-wide logger all LogEvents emit to. Starts off.
  static Logger& global();

  Logger() = default;
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// (Re)configures level and sink, closing any previously opened file.
  /// Returns false (and fills *error) when the path cannot be opened;
  /// the previous configuration stays in effect.
  bool configure(const Options& opts, std::string* error = nullptr);

  /// One relaxed load; the guard on every LogEvent.
  bool enabled(LogLevel lvl) const {
    return static_cast<int>(lvl) >= level_.load(std::memory_order_relaxed);
  }

  /// Lines shed by the rate limiter since construction. Also surfaced as
  /// the skewopt_log_dropped_lines_total metric.
  std::uint64_t droppedLines() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Writes one already-formatted line (newline included) through the
  /// rate limiter. LogEvent calls this; tests may too.
  void write(const std::string& line);

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kOff)};
  std::atomic<std::uint64_t> dropped_{0};
  mutable support::Mutex mu_;
  std::FILE* sink_ SKEWOPT_GUARDED_BY(mu_) = nullptr;
  bool owns_sink_ SKEWOPT_GUARDED_BY(mu_) = false;
  std::size_t max_lines_per_sec_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::uint64_t window_sec_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t window_count_ SKEWOPT_GUARDED_BY(mu_) = 0;
};

/// One structured log line under construction. Fields are appended in
/// call order (deterministic); the line is emitted on destruction, at the
/// end of the full expression:
///
///   obs::logInfo("serve: job done").field("job_id", id).field("ok", true);
///
/// Below the configured level the whole chain is a no-op.
class LogEvent {
 public:
  LogEvent(LogLevel lvl, const char* msg);
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& field(const char* key, std::int64_t v);
  LogEvent& field(const char* key, std::uint64_t v);
  LogEvent& field(const char* key, double v);
  LogEvent& field(const char* key, bool v);
  LogEvent& field(const char* key, const char* v);
  LogEvent& field(const char* key, const std::string& v);

 private:
  bool active_ = false;
  std::string line_;
};

inline LogEvent logDebug(const char* msg) {
  return LogEvent(LogLevel::kDebug, msg);
}
inline LogEvent logInfo(const char* msg) {
  return LogEvent(LogLevel::kInfo, msg);
}
inline LogEvent logWarn(const char* msg) {
  return LogEvent(LogLevel::kWarn, msg);
}
inline LogEvent logError(const char* msg) {
  return LogEvent(LogLevel::kError, msg);
}

}  // namespace skewopt::obs
