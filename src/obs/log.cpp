#include "obs/log.h"

#include <cerrno>
#include <cstring>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"  // detail::appendJsonString

namespace skewopt::obs {

namespace {

obs::Counter& logLinesTotal() {
  static obs::Counter& c = MetricsRegistry::global().counter(
      "skewopt_log_lines_total", "Structured log lines written");
  return c;
}

obs::Counter& logDroppedTotal() {
  static obs::Counter& c = MetricsRegistry::global().counter(
      "skewopt_log_dropped_lines_total",
      "Structured log lines shed by the rate limiter");
  return c;
}

}  // namespace

const char* logLevelName(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parseLogLevel(const std::string& text, LogLevel* out) {
  for (const LogLevel lvl : {LogLevel::kDebug, LogLevel::kInfo,
                             LogLevel::kWarn, LogLevel::kError,
                             LogLevel::kOff}) {
    if (text == logLevelName(lvl)) {
      *out = lvl;
      return true;
    }
  }
  return false;
}

Logger& Logger::global() {
  static Logger* logger = new Logger();  // never destroyed
  return *logger;
}

Logger::~Logger() {
  support::MutexLock lock(mu_);
  if (owns_sink_ && sink_ != nullptr) std::fclose(sink_);
}

bool Logger::configure(const Options& opts, std::string* error) {
  std::FILE* f = nullptr;
  bool owns = false;
  if (opts.level != LogLevel::kOff) {
    if (opts.path.empty()) {
      f = stderr;
    } else {
      f = std::fopen(opts.path.c_str(), "a");
      if (f == nullptr) {
        if (error != nullptr)
          *error = opts.path + ": " + std::strerror(errno);
        return false;
      }
      owns = true;
    }
  }
  support::MutexLock lock(mu_);
  if (owns_sink_ && sink_ != nullptr) std::fclose(sink_);
  sink_ = f;
  owns_sink_ = owns;
  max_lines_per_sec_ = opts.max_lines_per_sec;
  window_sec_ = 0;
  window_count_ = 0;
  level_.store(static_cast<int>(opts.level), std::memory_order_relaxed);
  return true;
}

void Logger::write(const std::string& line) {
  const std::uint64_t now = nowNs();
  support::MutexLock lock(mu_);
  if (sink_ == nullptr) return;
  if (max_lines_per_sec_ > 0) {
    const std::uint64_t sec = now / 1'000'000'000ULL;
    if (sec != window_sec_) {
      window_sec_ = sec;
      window_count_ = 0;
    }
    if (++window_count_ > max_lines_per_sec_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      logDroppedTotal().add();
      return;
    }
  }
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
  logLinesTotal().add();
}

LogEvent::LogEvent(LogLevel lvl, const char* msg) {
  if (lvl == LogLevel::kOff || !Logger::global().enabled(lvl)) return;
  active_ = true;
  line_ = "{\"ts_ns\":" + std::to_string(nowNs()) + ",\"level\":\"";
  line_ += logLevelName(lvl);
  line_ += "\",\"msg\":";
  detail::appendJsonString(line_, msg);
}

LogEvent::~LogEvent() {
  if (!active_) return;
  line_ += "}\n";
  Logger::global().write(line_);
}

LogEvent& LogEvent::field(const char* key, std::int64_t v) {
  if (!active_) return *this;
  line_ += ',';
  detail::appendJsonString(line_, key);
  line_ += ':' + std::to_string(v);
  return *this;
}

LogEvent& LogEvent::field(const char* key, std::uint64_t v) {
  if (!active_) return *this;
  line_ += ',';
  detail::appendJsonString(line_, key);
  line_ += ':' + std::to_string(v);
  return *this;
}

LogEvent& LogEvent::field(const char* key, double v) {
  if (!active_) return *this;
  line_ += ',';
  detail::appendJsonString(line_, key);
  line_ += ':';
  line_ += detail::formatDouble(v);
  return *this;
}

LogEvent& LogEvent::field(const char* key, bool v) {
  if (!active_) return *this;
  line_ += ',';
  detail::appendJsonString(line_, key);
  line_ += v ? ":true" : ":false";
  return *this;
}

LogEvent& LogEvent::field(const char* key, const char* v) {
  if (!active_) return *this;
  line_ += ',';
  detail::appendJsonString(line_, key);
  line_ += ':';
  detail::appendJsonString(line_, v);
  return *this;
}

LogEvent& LogEvent::field(const char* key, const std::string& v) {
  return field(key, v.c_str());
}

}  // namespace skewopt::obs
