#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace skewopt::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

std::string formatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (std::strtod(buf, nullptr) == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

}  // namespace detail

void setMetricsEnabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::add(double d) {
  if (!metricsOn()) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (std::adjacent_find(bounds_.begin(), bounds_.end(),
                         [](double a, double b) { return a >= b; }) !=
      bounds_.end())
    throw std::logic_error(
        "obs: histogram bounds must be strictly ascending");
  for (double b : bounds_)
    if (!std::isfinite(b))
      throw std::logic_error("obs: histogram bounds must be finite");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  if (!metricsOn()) return;
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> defaultMsBuckets() {
  return {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0};
}

const char* metricKindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

namespace {

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool validLabelName(const std::string& name) {
  // Like a metric name, but Prometheus label names have no colons.
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

[[noreturn]] void throwKindMismatch(const std::string& name, MetricKind have,
                                    MetricKind want) {
  throw std::logic_error("obs: metric '" + name + "' already registered as " +
                         metricKindName(have) + ", requested " +
                         metricKindName(want));
}

}  // namespace

std::string renderLabels(const LabelSet& labels) {
  std::string out;
  for (const auto& [name, value] : labels) {
    if (!validLabelName(name))
      throw std::logic_error("obs: invalid label name '" + name + "'");
    if (!out.empty()) out += ',';
    out += name;
    out += "=\"";
    for (char c : value) {
      if (c == '\\')
        out += "\\\\";
      else if (c == '"')
        out += "\\\"";
      else if (c == '\n')
        out += "\\n";
      else
        out += c;
    }
    out += '"';
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::findOrCreate(const std::string& name,
                                                      const LabelSet& labels,
                                                      MetricKind kind,
                                                      const std::string& help) {
  if (!validMetricName(name))
    throw std::logic_error("obs: invalid metric name '" + name + "'");
  const std::string rendered = renderLabels(labels);
  const std::string key =
      rendered.empty() ? name : name + "{" + rendered + "}";
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    const auto fam = family_kind_.find(name);
    if (fam != family_kind_.end() && fam->second != kind)
      throwKindMismatch(name, fam->second, kind);
    Entry e;
    e.name = name;
    e.labels = rendered;
    e.kind = kind;
    e.help = help;
    switch (kind) {
      case MetricKind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        break;  // caller constructs (needs the bounds)
    }
    it = metrics_.emplace(key, std::move(e)).first;
    family_kind_.emplace(name, kind);
  } else if (it->second.kind != kind) {
    throwKindMismatch(name, it->second.kind, kind);
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  return counter(name, {}, help);
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const LabelSet& labels,
                                  const std::string& help) {
  support::MutexLock lock(mu_);
  return *findOrCreate(name, labels, MetricKind::kCounter, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  return gauge(name, {}, help);
}

Gauge& MetricsRegistry::gauge(const std::string& name, const LabelSet& labels,
                              const std::string& help) {
  support::MutexLock lock(mu_);
  return *findOrCreate(name, labels, MetricKind::kGauge, help).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  return histogram(name, {}, std::move(bounds), help);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const LabelSet& labels,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  // Construct first: the bounds validation in the Histogram constructor
  // must not leave a half-registered (histogram-less) entry behind.
  auto fresh = std::make_unique<Histogram>(std::move(bounds));
  support::MutexLock lock(mu_);
  Entry& e = findOrCreate(name, labels, MetricKind::kHistogram, help);
  if (!e.histogram) {
    e.histogram = std::move(fresh);
  } else if (e.histogram->bounds() != fresh->bounds()) {
    throw std::logic_error("obs: histogram '" + name +
                           "' re-registered with different bounds");
  }
  return *e.histogram;
}

Snapshot MetricsRegistry::snapshot() const {
  support::MutexLock lock(mu_);
  Snapshot snap;
  snap.reserve(metrics_.size());
  for (const auto& [key, e] : metrics_) {
    (void)key;
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    s.help = e.help;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.count = e.counter->value();
        break;
      case MetricKind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.histogram;
        s.count = h.count();
        s.value = h.sum();
        std::uint64_t cum = 0;
        s.buckets.reserve(h.bounds().size() + 1);
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.bucket(i);
          s.buckets.emplace_back(h.bounds()[i], cum);
        }
        cum += h.bucket(h.bounds().size());
        s.buckets.emplace_back(std::numeric_limits<double>::infinity(), cum);
        break;
      }
    }
    snap.push_back(std::move(s));
  }
  // Key order is name-then-'{', which interleaves a family's labeled
  // children with longer family names ('_' < '{'); re-sort by
  // (name, labels) so each family is one contiguous block.
  std::sort(snap.begin(), snap.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

void MetricsRegistry::reset() {
  support::MutexLock lock(mu_);
  for (auto& [name, e] : metrics_) {
    (void)name;
    switch (e.kind) {
      case MetricKind::kCounter:
        e.counter->reset();
        break;
      case MetricKind::kGauge:
        e.gauge->reset();
        break;
      case MetricKind::kHistogram:
        e.histogram->reset();
        break;
    }
  }
}

namespace {

using detail::formatDouble;

void appendEscapedHelp(std::string& out, const std::string& help) {
  for (char c : help) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
}

}  // namespace

std::string prometheusText(const Snapshot& snap) {
  std::string out;
  const std::string* last_family = nullptr;
  for (const MetricSample& s : snap) {
    // One HELP/TYPE pair per family: a labeled family's children arrive
    // contiguously (snapshot order is (name, labels)).
    if (!last_family || *last_family != s.name) {
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " ";
        appendEscapedHelp(out, s.help);
        out += "\n";
      }
      out += "# TYPE " + s.name + " " + metricKindName(s.kind) + "\n";
      last_family = &s.name;
    }
    const std::string braced =
        s.labels.empty() ? "" : "{" + s.labels + "}";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += s.name + braced + " " + std::to_string(s.count) + "\n";
        break;
      case MetricKind::kGauge:
        out += s.name + braced + " " + formatDouble(s.value) + "\n";
        break;
      case MetricKind::kHistogram:
        for (const auto& [le, cum] : s.buckets)
          out += s.name + "_bucket{" +
                 (s.labels.empty() ? "" : s.labels + ",") + "le=\"" +
                 formatDouble(le) + "\"} " + std::to_string(cum) + "\n";
        out += s.name + "_sum" + braced + " " + formatDouble(s.value) + "\n";
        out += s.name + "_count" + braced + " " + std::to_string(s.count) +
               "\n";
        break;
    }
  }
  return out;
}

}  // namespace skewopt::obs
