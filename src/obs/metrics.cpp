#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace skewopt::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

std::string formatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (std::strtod(buf, nullptr) == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

}  // namespace detail

void setMetricsEnabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::add(double d) {
  if (!metricsOn()) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (std::adjacent_find(bounds_.begin(), bounds_.end(),
                         [](double a, double b) { return a >= b; }) !=
      bounds_.end())
    throw std::logic_error(
        "obs: histogram bounds must be strictly ascending");
  for (double b : bounds_)
    if (!std::isfinite(b))
      throw std::logic_error("obs: histogram bounds must be finite");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  if (!metricsOn()) return;
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> defaultMsBuckets() {
  return {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0};
}

const char* metricKindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

namespace {

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

[[noreturn]] void throwKindMismatch(const std::string& name, MetricKind have,
                                    MetricKind want) {
  throw std::logic_error("obs: metric '" + name + "' already registered as " +
                         metricKindName(have) + ", requested " +
                         metricKindName(want));
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  if (!validMetricName(name))
    throw std::logic_error("obs: invalid metric name '" + name + "'");
  support::MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = MetricKind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != MetricKind::kCounter) {
    throwKindMismatch(name, it->second.kind, MetricKind::kCounter);
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  if (!validMetricName(name))
    throw std::logic_error("obs: invalid metric name '" + name + "'");
  support::MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = MetricKind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != MetricKind::kGauge) {
    throwKindMismatch(name, it->second.kind, MetricKind::kGauge);
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  if (!validMetricName(name))
    throw std::logic_error("obs: invalid metric name '" + name + "'");
  support::MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = MetricKind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != MetricKind::kHistogram) {
    throwKindMismatch(name, it->second.kind, MetricKind::kHistogram);
  } else if (it->second.histogram->bounds() != bounds) {
    throw std::logic_error("obs: histogram '" + name +
                           "' re-registered with different bounds");
  }
  return *it->second.histogram;
}

Snapshot MetricsRegistry::snapshot() const {
  support::MutexLock lock(mu_);
  Snapshot snap;
  snap.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    s.help = e.help;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.count = e.counter->value();
        break;
      case MetricKind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.histogram;
        s.count = h.count();
        s.value = h.sum();
        std::uint64_t cum = 0;
        s.buckets.reserve(h.bounds().size() + 1);
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.bucket(i);
          s.buckets.emplace_back(h.bounds()[i], cum);
        }
        cum += h.bucket(h.bounds().size());
        s.buckets.emplace_back(std::numeric_limits<double>::infinity(), cum);
        break;
      }
    }
    snap.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset() {
  support::MutexLock lock(mu_);
  for (auto& [name, e] : metrics_) {
    (void)name;
    switch (e.kind) {
      case MetricKind::kCounter:
        e.counter->reset();
        break;
      case MetricKind::kGauge:
        e.gauge->reset();
        break;
      case MetricKind::kHistogram:
        e.histogram->reset();
        break;
    }
  }
}

namespace {

using detail::formatDouble;

void appendEscapedHelp(std::string& out, const std::string& help) {
  for (char c : help) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
}

}  // namespace

std::string prometheusText(const Snapshot& snap) {
  std::string out;
  for (const MetricSample& s : snap) {
    if (!s.help.empty()) {
      out += "# HELP " + s.name + " ";
      appendEscapedHelp(out, s.help);
      out += "\n";
    }
    out += "# TYPE " + s.name + " " + metricKindName(s.kind) + "\n";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += s.name + " " + std::to_string(s.count) + "\n";
        break;
      case MetricKind::kGauge:
        out += s.name + " " + formatDouble(s.value) + "\n";
        break;
      case MetricKind::kHistogram:
        for (const auto& [le, cum] : s.buckets)
          out += s.name + "_bucket{le=\"" + formatDouble(le) + "\"} " +
                 std::to_string(cum) + "\n";
        out += s.name + "_sum " + formatDouble(s.value) + "\n";
        out += s.name + "_count " + std::to_string(s.count) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace skewopt::obs
