#include "obs/clock.h"

#include <chrono>

namespace skewopt::obs {

std::uint64_t steadyNowNs() {
  // Rebased to the first call so exported trace timestamps stay small.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace detail {
std::atomic<ClockFn> g_clock{&steadyNowNs};
}  // namespace detail

void setClockForTest(ClockFn fn) {
  detail::g_clock.store(fn != nullptr ? fn : &steadyNowNs,
                        std::memory_order_relaxed);
}

}  // namespace skewopt::obs
