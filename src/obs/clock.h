// Injectable monotonic clock — the single time source of the observability
// layer (and, through support::Stopwatch, of every phase timing in the
// optimizers and the job service).
//
// Production reads std::chrono::steady_clock (monotonic across system
// clock adjustments; never system_clock or the implementation-defined
// high_resolution_clock in timing paths). Tests inject a deterministic
// fake via setClockForTest, which makes every duration-valued metric and
// span bit-stable: a snapshot taken under a fake clock compares exactly
// across serial and parallel runs.
//
// The active source is one atomic function pointer read with relaxed
// ordering — nowNs() costs a load plus the clock call itself, and nothing
// here takes a lock.
#pragma once

#include <atomic>
#include <cstdint>

namespace skewopt::obs {

/// Nanoseconds since an arbitrary (per-process) epoch.
using ClockFn = std::uint64_t (*)();

/// The production source: steady_clock, rebased so early readings are
/// small positive numbers.
std::uint64_t steadyNowNs();

namespace detail {
extern std::atomic<ClockFn> g_clock;
}  // namespace detail

/// Current time from the active source.
inline std::uint64_t nowNs() {
  return detail::g_clock.load(std::memory_order_relaxed)();
}

/// Installs a fake clock (nullptr restores steadyNowNs). Test-only: the
/// swap is not synchronized against concurrent nowNs() readers beyond the
/// atomicity of the pointer itself, so install fakes before spinning up
/// the threads under test.
void setClockForTest(ClockFn fn);

}  // namespace skewopt::obs
