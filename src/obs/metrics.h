// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with lock-free atomic updates, snapshots for exact test assertions, and
// Prometheus text-format exposition.
//
// Update discipline: every mutation first checks the process-wide enable
// flag — one relaxed atomic load — and is a no-op while metrics are
// disabled, so fully-instrumented hot paths cost nothing measurable by
// default (the <1% bench_kernels budget of docs/observability.md).
// Instrument sites bind their metric once through a function-local static
// reference:
//
//   static obs::Counter& solves =
//       obs::MetricsRegistry::global().counter("skewopt_lp_solves_total");
//   solves.add();
//
// so after the first call there is no registry lookup and no lock on the
// path — just the enable check and a relaxed fetch_add.
//
// Snapshots are taken under the registry lock, ordered by metric name
// (std::map), and value-comparable: with a fake clock injected
// (obs/clock.h) the duration-valued histograms are deterministic too, and
// a serial and a parallel run of the same deterministic algorithm produce
// equal snapshots (asserted by obs_test).
//
// The metric catalog — every stable name the library emits — lives in
// docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/thread_annotations.h"

namespace skewopt::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;

/// Shortest decimal that round-trips `v` (Go-style; "+Inf"/"-Inf"/"NaN").
/// Shared by the Prometheus and trace-JSON writers.
std::string formatDouble(double v);
}  // namespace detail

/// One relaxed load; the guard on every metric mutation.
inline bool metricsOn() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables all metric updates process-wide. Reads (value(),
/// snapshot()) always work.
void setMetricsEnabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (metricsOn()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depths, entry counts).
class Gauge {
 public:
  void set(double v) {
    if (metricsOn()) v_.store(v, std::memory_order_relaxed);
  }
  void add(double d);  ///< CAS loop (atomic<double>::fetch_add is C++20-iffy)
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are inclusive upper bounds in
/// ascending order; an implicit +Inf bucket catches the rest. Buckets are
/// stored non-cumulative internally and accumulated at snapshot time.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket bounds for millisecond-valued latency histograms.
std::vector<double> defaultMsBuckets();

enum class MetricKind { kCounter, kGauge, kHistogram };
const char* metricKindName(MetricKind k);

/// One label set of a labeled metric family, in emission order. Label
/// names must match [a-zA-Z_][a-zA-Z0-9_]*; values may be any UTF-8 (they
/// are escaped on exposition). Per-shard serve metrics
/// (skewopt_cluster_*{shard="N"}) are the first user — see
/// docs/observability.md.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Deterministic `k="v",k2="v2"` rendering (Prometheus label syntax,
/// values escaped). Throws std::logic_error on an invalid label name.
std::string renderLabels(const LabelSet& labels);

/// One metric's state at snapshot time. Comparable for exact assertions.
struct MetricSample {
  std::string name;
  /// Rendered label set (`shard="0"`), empty for unlabeled metrics.
  std::string labels;
  MetricKind kind = MetricKind::kCounter;
  std::string help;
  std::uint64_t count = 0;  ///< counter value / histogram observation count
  double value = 0.0;       ///< gauge value / histogram sum
  /// Histogram only: (upper bound, cumulative count), +Inf last.
  std::vector<std::pair<double, std::uint64_t>> buckets;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

using Snapshot = std::vector<MetricSample>;

class MetricsRegistry {
 public:
  /// The process-wide registry every instrument site uses.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates a metric. Returned references stay valid for the
  /// registry's lifetime. Throws std::logic_error when the name is invalid
  /// ([a-zA-Z_:][a-zA-Z0-9_:]*) or already registered with another kind
  /// (or, for histograms, other bounds).
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Labeled variants: one family name, one child per label set. Kind
  /// consistency is enforced across the whole family (labeled and
  /// unlabeled children alike); help text is taken from the first
  /// registration. Children are distinct metrics — the registry never
  /// aggregates across label sets.
  Counter& counter(const std::string& name, const LabelSet& labels,
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const LabelSet& labels,
               const std::string& help = "");
  Histogram& histogram(const std::string& name, const LabelSet& labels,
                       std::vector<double> bounds,
                       const std::string& help = "");

  /// All metrics, ordered by (name, labels) so a labeled family's
  /// children stay contiguous. Deterministic given deterministic updates
  /// (inject a fake clock to pin duration-valued metrics).
  Snapshot snapshot() const;

  /// Zeroes every registered metric (registration survives). Test hook.
  void reset();

 private:
  struct Entry {
    std::string name;    ///< family name (no labels)
    std::string labels;  ///< rendered label set, empty when unlabeled
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& findOrCreate(const std::string& name, const LabelSet& labels,
                      MetricKind kind, const std::string& help)
      SKEWOPT_REQUIRES(mu_);

  mutable support::Mutex mu_;
  /// Keyed by name + rendered labels (unique per child).
  std::map<std::string, Entry> metrics_ SKEWOPT_GUARDED_BY(mu_);
  /// Family name -> kind, so labeled and unlabeled children of one family
  /// cannot disagree on the TYPE line.
  std::map<std::string, MetricKind> family_kind_ SKEWOPT_GUARDED_BY(mu_);
};

/// Prometheus text exposition format (version 0.0.4): HELP/TYPE comments
/// (once per family), `_bucket{le="..."}`/`_sum`/`_count` series per
/// histogram, label sets rendered in `{...}`. Deterministic for a given
/// snapshot; ends with a newline.
std::string prometheusText(const Snapshot& snap);

}  // namespace skewopt::obs
