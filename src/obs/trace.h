// Tracing: RAII spans recorded into per-thread ring buffers, exported as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Hot-path contract: constructing a Span while tracing is disabled costs
// one relaxed atomic load and nothing else. While enabled, a span takes a
// timestamp at construction and writes exactly one fixed-size slot into
// its thread's ring buffer at destruction — no lock, no allocation, no
// cross-thread cache traffic on the emit path.
//
// Concurrency: each buffer has a single writer (its owning thread);
// exporters on other threads read concurrently. Every slot field is an
// atomic, published under a per-slot sequence word (seqlock discipline:
// odd while the writer is inside, bumped to the slot's even ticket value
// with release order when done). Readers accept a slot only when the
// sequence reads the same even value before and after the payload loads,
// so torn slots — including ring wrap-around during an export — are
// dropped, never mis-reported, and TSan sees only atomics.
//
// Trace context: every span is stamped with the thread's current trace id
// (a 64-bit job identity installed via ScopedTraceContext; 0 = none), so
// one export can be filtered down to a single job's tree even when many
// jobs interleave on shared worker threads. support::ThreadPool propagates
// the submitting thread's context into runSlices workers.
//
// Span names and annotation keys must point at storage that outlives the
// export (string literals at the instrument sites — the span taxonomy in
// docs/observability.md is the catalog). Nesting is reconstructed by
// Perfetto from timestamp containment of "ph":"X" complete events on the
// same thread track; the recorded depth is exported as an arg for tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "support/thread_annotations.h"

namespace skewopt::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
/// JSON string escaper shared by the trace/log/recorder exporters.
void appendJsonString(std::string& out, const char* s);
}  // namespace detail

/// One relaxed load; the guard on every span.
inline bool tracingOn() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Max typed annotations carried by one span; extras are dropped.
inline constexpr int kMaxSpanArgs = 4;
/// Default slots per thread buffer; the ring overwrites oldest when full.
/// Override per Tracer via TraceOptions, or for the global tracer via the
/// SKEWOPT_TRACE_CAPACITY environment variable (read once, at first use).
inline constexpr std::size_t kTraceRingSlots = 8192;

struct TraceOptions {
  /// Per-thread ring capacity in spans; clamped to [64, 1<<22].
  std::size_t ring_slots = kTraceRingSlots;
};

// ---------------------------------------------------------------------------
// Trace context: a thread-local 64-bit job identity captured by every span.

/// The calling thread's current trace id (0 = no context installed).
std::uint64_t currentTraceId();

/// Installs `trace_id` as the thread's current trace context for the
/// enclosing scope, restoring the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t trace_id);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::uint64_t prev_;
};

/// Deterministic nonzero trace id for a job: a splitmix64-style mix of the
/// spec content hash and the job id, so the same job always maps to the
/// same id without any global counter.
std::uint64_t traceIdFor(std::uint64_t content_hash, std::uint64_t job_id);

/// 16-digit lowercase hex rendering of a trace id (the wire format).
std::string traceIdHex(std::uint64_t trace_id);

/// A completed span read out of the buffers.
struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;    ///< stable per-thread buffer id
  std::uint32_t depth = 0;  ///< nesting depth on its thread at start
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t ticket = 0;    ///< per-thread emit order (sort tie-break)
  std::uint64_t trace_id = 0;  ///< owning job's trace context (0 = none)

  enum class ArgType : std::uint8_t { kNone = 0, kInt, kFloat, kBool };
  struct Arg {
    const char* key = nullptr;
    ArgType type = ArgType::kNone;
    std::int64_t i = 0;
    double f = 0.0;
    bool b = false;
  };
  Arg args[kMaxSpanArgs];
};

class Tracer {
 public:
  /// The process-wide tracer all spans record into. Its ring capacity
  /// honors SKEWOPT_TRACE_CAPACITY when set.
  static Tracer& global();

  explicit Tracer(TraceOptions opts = {});
  ~Tracer();  // out-of-line: ThreadBuffer is incomplete here
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Refcounted enable: tracing is on while at least one starter is
  /// active (the CLI for a whole run, serve for each traced job).
  void start();
  void stop();

  /// Per-thread ring capacity this tracer was built with.
  std::size_t ringSlots() const { return opts_.ring_slots; }

  /// Spans evicted by ring wrap-around since construction (summed over
  /// all thread buffers). Also surfaced as the
  /// skewopt_trace_spans_dropped_total metric.
  std::uint64_t droppedSpans() const;

  /// All consistent spans with ts_ns >= since_ns, sorted by
  /// (ts, tid, ticket) — deterministic under a fake clock. When
  /// `trace_id` is nonzero, only spans stamped with that context are
  /// returned. Buffers are not cleared; callers window with since_ns
  /// (obs::nowNs() taken before the region of interest) so concurrent
  /// exports never race a clear.
  std::vector<TraceEvent> collect(std::uint64_t since_ns = 0,
                                  std::uint64_t trace_id = 0) const;

  /// Chrome trace-event JSON ({"displayTimeUnit":"ms","traceEvents":[...]})
  /// for collect(since_ns, trace_id). Valid strict JSON; ts/dur in
  /// microseconds; each stamped event carries a "trace_id" hex string arg.
  std::string exportJson(std::uint64_t since_ns = 0,
                         std::uint64_t trace_id = 0) const;

  /// exportJson to a file. Returns false and fills *error on I/O failure.
  bool writeJsonFile(const std::string& path, std::uint64_t since_ns,
                     std::string* error) const;

  /// Records one already-timed event (e.g. a queue wait measured across
  /// threads) into the calling thread's buffer, stamped with the current
  /// trace context. No-op while tracing is disabled.
  void emitEvent(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns);

 private:
  friend class Span;
  struct ThreadBuffer;

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer& localBuffer();

  TraceOptions opts_;
  mutable support::Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ SKEWOPT_GUARDED_BY(mu_);
  std::atomic<int> start_count_{0};
};

/// RAII span. Times the enclosing scope and records it (with any args
/// attached before destruction) into the current thread's ring buffer,
/// stamped with the thread's current trace context. `name` and arg keys
/// must be string literals (or otherwise outlive the tracer's exports).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const char* key, std::int64_t v);
  void arg(const char* key, double v);
  void arg(const char* key, bool v);

 private:
  bool active_ = false;
  std::uint32_t depth_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t trace_id_ = 0;
  const char* name_ = nullptr;
  int nargs_ = 0;
  TraceEvent::Arg args_[kMaxSpanArgs];
};

}  // namespace skewopt::obs
