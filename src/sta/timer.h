// Multi-corner static timing analysis of a routed clock tree — the
// reproduction's "golden timer" (the paper uses Synopsys PrimeTime in this
// role).
//
// Per corner, the timer propagates arrival time and transition from the
// clock source to every sink:
//   * gate delay / output slew: NLDM table lookup (bilinear) at the cell's
//     (input slew, total output load) point;
//   * wire delay: Elmore on the golden routed Steiner net with a per-edge
//     pi capacitance model;
//   * wire slew: ln(9)*Elmore step response, extended to ramp inputs with
//     the PERI rule.
//
// Arrival convention: for the source and buffers, arrival[n]/slew[n] are at
// the node's *output*; for sinks they are at the clock pin. Sink latency is
// then arrival[sink], and an arc's delay is arrival[dst] - arrival[src].
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "network/clock_tree.h"
#include "network/design.h"
#include "network/routing.h"
#include "rc/rc.h"
#include "tech/tech.h"

namespace skewopt::sta {

/// Timing state of one corner.
struct CornerTiming {
  std::size_t corner = 0;             ///< corner id in the TechModel
  std::vector<double> arrival;        ///< ps, per node id (see convention)
  std::vector<double> slew;           ///< ps, per node id
  std::vector<double> in_arrival;     ///< ps, at each node's input pin
  std::vector<double> in_slew;        ///< ps, at each node's input pin
  std::vector<double> driver_load;    ///< fF, net+pin load per driving node
};

/// Reusable buffers for propagateFrom's BFS walk: the per-net RC view,
/// Elmore buffers, and the queue itself. One instance per concurrent
/// caller; propagateFrom falls back to a function-local one when none is
/// passed. Keeping a scratch alive across calls (IncrementalTimer,
/// ScopedRetime) makes the hot trial loop allocation-free.
struct PropagateScratch {
  std::vector<int> queue;
  std::vector<std::size_t> pin_rc;
  std::vector<std::size_t> rc_of;
  rc::RcTree rct;
  std::vector<double> elmore;
  std::vector<double> cdown;
  // NLDM axis-interval hints carried across a propagation's lookups: slew
  // and load walk near-monotone sequences down a level, so the previous
  // cell row is almost always the next one too.
  tech::LutHint delay_hint;
  tech::LutHint slew_hint;
  // Corner-strided SoA buffers for propagateFromAllCorners: the shared-
  // topology RC view with one lane per corner, lane-interleaved Elmore
  // results, and K-wide staging for loads/slews/lookup results.
  rc::RcTreeBatch rct_batch;
  std::vector<double> elmore_batch;
  std::vector<double> cdown_batch;
  std::vector<double> lanes;
};

class Timer {
 public:
  explicit Timer(const tech::TechModel& tech,
                 double source_slew_ps = 30.0)
      : tech_(&tech), source_slew_ps_(source_slew_ps) {}

  /// Full propagation at one corner.
  CornerTiming analyze(const network::ClockTree& tree,
                       const network::Routing& routing,
                       std::size_t corner) const;

  /// Re-propagates the subtree rooted at `start` into an existing timing
  /// state. `t` must hold valid in_arrival/in_slew for `start` (the source
  /// needs none); everything at and below `start` is recomputed. Arrays in
  /// `t` are grown if the tree has new nodes. This is the kernel of
  /// IncrementalTimer.
  void propagateFrom(const network::ClockTree& tree,
                     const network::Routing& routing, std::size_t corner,
                     int start, CornerTiming* t,
                     PropagateScratch* scratch = nullptr) const;

  /// Corner-batched propagateFrom: one BFS walk re-propagates the subtree
  /// at `start` for every corner in `corners` at once. The net topology
  /// does not depend on the corner, so the RC view is built once with one
  /// lane per corner (RcTreeBatch), Elmore runs over all lanes in one tree
  /// walk, and gate lookups go through the cell's corner-major packed
  /// tables. `timings[ki]` must be the state of `corners[ki]`; results are
  /// bit-identical to calling propagateFrom once per corner
  /// (differential-tested).
  void propagateFromAllCorners(const network::ClockTree& tree,
                               const network::Routing& routing,
                               std::span<const std::size_t> corners,
                               int start, std::span<CornerTiming> timings,
                               PropagateScratch* scratch = nullptr) const;

  /// Propagation at every active corner of a design.
  std::vector<CornerTiming> analyzeDesign(const network::Design& d) const;

  /// Sink latencies only (convenience for objective evaluation).
  std::vector<double> sinkLatencies(const network::ClockTree& tree,
                                    const network::Routing& routing,
                                    std::size_t corner,
                                    const std::vector<int>& sinks) const;

  /// Worst max-capacitance overload ratio across all drivers (<= 1 means
  /// clean). Used to assert the optimizer creates no max-cap violations.
  double worstLoadRatio(const network::ClockTree& tree,
                        const network::Routing& routing,
                        std::size_t corner) const;

  const tech::TechModel& tech() const { return *tech_; }
  double sourceSlew() const { return source_slew_ps_; }

 private:
  const tech::TechModel* tech_;
  double source_slew_ps_;
};

/// Clock-tree power at a corner in mW: switching (wire + pin caps at the
/// tech clock frequency), cell internal energy, and leakage.
double clockTreePowerMw(const network::Design& d, std::size_t corner);

/// Sum over the design's sink pairs of the worst alpha-normalized skew
/// variation across corner pairs — the paper's objective (Eqs. 1-3) with
/// the alphas computed from this design's own state. Used by the CTS
/// scenario selection; the optimizers use core::Objective, which locks the
/// alphas of the *initial* tree instead.
double sumNormalizedSkewVariation(const network::Design& d,
                                  const Timer& timer);

/// Total placed area of the clock buffers, um^2 (Table 5's area column).
double clockCellAreaUm2(const network::Design& d);

}  // namespace skewopt::sta
