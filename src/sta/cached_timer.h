// Memoizing wrapper around the golden timer.
//
// The optimizers evaluate the objective (a full multi-corner propagation)
// many times on an unchanged design — e.g. Algorithm 2 re-times the same
// state while scoring candidate chunks, and the global sweep re-times each
// trial several times. The ClockTree edit stamp plus the Routing version
// uniquely identify a timing state, so results can be reused for free
// without any invalidation logic in the callers.
#pragma once

#include <map>

#include "sta/timer.h"

namespace skewopt::sta {

class CachedTimer {
 public:
  explicit CachedTimer(const tech::TechModel& tech) : timer_(tech) {}

  const CornerTiming& analyze(const network::ClockTree& tree,
                              const network::Routing& routing,
                              std::size_t corner) {
    const Key key{tree.editStamp(), routing.version(), corner};
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    if (cache_.size() > kMaxEntries) cache_.clear();
    return cache_.emplace(key, timer_.analyze(tree, routing, corner))
        .first->second;
  }

  std::vector<CornerTiming> analyzeDesign(const network::Design& d) {
    std::vector<CornerTiming> out;
    out.reserve(d.corners.size());
    for (const std::size_t k : d.corners)
      out.push_back(analyze(d.tree, d.routing, k));
    return out;
  }

  const Timer& timer() const { return timer_; }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  // NOTE: the stamp pair is only unique per (tree, routing) object pair;
  // use one CachedTimer per design being iterated, not shared across
  // designs.
  struct Key {
    std::uint64_t tree_stamp;
    std::uint64_t routing_version;
    std::size_t corner;
    bool operator<(const Key& o) const {
      if (tree_stamp != o.tree_stamp) return tree_stamp < o.tree_stamp;
      if (routing_version != o.routing_version)
        return routing_version < o.routing_version;
      return corner < o.corner;
    }
  };
  static constexpr std::size_t kMaxEntries = 64;

  Timer timer_;
  std::map<Key, CornerTiming> cache_;
  std::size_t hits_ = 0, misses_ = 0;
};

}  // namespace skewopt::sta
