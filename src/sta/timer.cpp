#include "sta/timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "obs/metrics.h"
#include "rc/rc.h"

namespace skewopt::sta {

using network::ClockNode;
using network::ClockTree;
using network::NodeKind;
using network::Routing;

namespace {

/// Input pin capacitance of a tree node at a corner.
double pinCap(const tech::TechModel& tech, const ClockTree& tree, int id,
              std::size_t corner) {
  const ClockNode& n = tree.node(id);
  if (n.kind == NodeKind::Sink) return tech.sinkCapFf(corner);
  return tech.cell(static_cast<std::size_t>(n.cell)).pin_cap_ff[corner];
}

/// Builds the RC view of a routed net into caller scratch: wire R/C from
/// the Steiner tree (pi model per edge) plus receiver pin caps. `rct` is
/// rebuilt in place (rc node 0 = driving point = steiner node 0) and
/// `pin_rc` receives the rc-node index of every child pin.
void buildNetRc(const tech::TechModel& tech, const ClockTree& tree,
                int driver, const route::SteinerTree& net, std::size_t corner,
                rc::RcTree& rct, std::vector<std::size_t>& pin_rc,
                std::vector<std::size_t>& rc_of) {
  const tech::WireParams& w = tech.wire(corner);
  rct.clear();
  rc_of.assign(net.size(), 0);
  rc_of[0] = 0;
  for (std::size_t n = 1; n < net.size(); ++n) {
    const double len = net.edgeLength(n);
    const double res = len * w.res_kohm_per_um;
    const double cap = len * w.cap_ff_per_um;
    rc_of[n] = rct.addNode(rc_of[static_cast<std::size_t>(net.parent[n])],
                           res, cap / 2.0);
    rct.addCap(rc_of[static_cast<std::size_t>(net.parent[n])], cap / 2.0);
  }
  const auto& children = tree.node(driver).children;
  assert(children.size() == net.pin_node.size());
  pin_rc.resize(children.size());
  for (std::size_t i = 0; i < children.size(); ++i) {
    const std::size_t rcn = rc_of[net.pin_node[i]];
    rct.addCap(rcn, pinCap(tech, tree, children[i], corner));
    pin_rc[i] = rcn;
  }
}

/// Corner-batched buildNetRc: one shared-topology RcTreeBatch with a lane
/// per corner. RcTreeBatch::addNode appends sequentially, so rc node n ==
/// steiner node n and no rc_of map is needed. Every per-lane value is
/// computed by the same expression, and every per-node cap accumulation
/// happens in the same order, as the scalar builder — each lane of the
/// result is bit-identical to buildNetRc at that corner. That includes the
/// scalar builder's handling of steiner nodes whose parent has a higher
/// index (edge splits, trunk chains): rc_of[] there still holds 0 for an
/// unvisited parent, so such edges hang off the driving point — mirrored
/// here as `p < n ? p : 0`.
void buildNetRcBatch(const tech::TechModel& tech, const ClockTree& tree,
                     int driver, const route::SteinerTree& net,
                     std::span<const std::size_t> corners,
                     rc::RcTreeBatch& rct, std::vector<std::size_t>& pin_rc,
                     std::vector<double>& lanes) {
  const std::size_t K = corners.size();
  rct.reset(K);
  lanes.resize(2 * K);
  double* res_l = lanes.data();
  double* cap_l = lanes.data() + K;
  for (std::size_t n = 1; n < net.size(); ++n) {
    const double len = net.edgeLength(n);
    for (std::size_t k = 0; k < K; ++k) {
      const tech::WireParams& w = tech.wire(corners[k]);
      res_l[k] = len * w.res_kohm_per_um;
      cap_l[k] = (len * w.cap_ff_per_um) / 2.0;
    }
    const std::size_t p = static_cast<std::size_t>(net.parent[n]);
    const std::size_t rp = p < n ? p : 0;
    rct.addNode(rp, res_l, cap_l);
    rct.addCap(rp, cap_l);
  }
  const auto& children = tree.node(driver).children;
  assert(children.size() == net.pin_node.size());
  pin_rc.resize(children.size());
  for (std::size_t i = 0; i < children.size(); ++i) {
    for (std::size_t k = 0; k < K; ++k)
      cap_l[k] = pinCap(tech, tree, children[i], corners[k]);
    rct.addCap(net.pin_node[i], cap_l);
    pin_rc[i] = net.pin_node[i];
  }
}

}  // namespace

CornerTiming Timer::analyze(const ClockTree& tree, const Routing& routing,
                            std::size_t corner) const {
  const std::size_t n = tree.numNodes();
  CornerTiming t;
  t.corner = corner;
  t.arrival.assign(n, 0.0);
  t.slew.assign(n, 0.0);
  t.in_arrival.assign(n, 0.0);
  t.in_slew.assign(n, 0.0);
  t.driver_load.assign(n, 0.0);
  propagateFrom(tree, routing, corner, tree.root(), &t);
  return t;
}

void Timer::propagateFrom(const ClockTree& tree, const Routing& routing,
                          std::size_t corner, int start, CornerTiming* tp,
                          PropagateScratch* scratch) const {
  CornerTiming& t = *tp;
  // Grow state arrays for nodes created since `t` was computed.
  const std::size_t n = tree.numNodes();
  if (t.arrival.size() < n) {
    t.arrival.resize(n, 0.0);
    t.slew.resize(n, 0.0);
    t.in_arrival.resize(n, 0.0);
    t.in_slew.resize(n, 0.0);
    t.driver_load.resize(n, 0.0);
  }
  PropagateScratch local;
  PropagateScratch& s = scratch ? *scratch : local;

  // BFS from `start`; parents are always processed before children, so a
  // buffer's input slew is known by the time its own net is evaluated.
  s.queue.clear();
  s.queue.push_back(start);
  if (start == tree.root()) {
    t.slew[0] = source_slew_ps_;
    t.arrival[0] = 0.0;
  }
  for (std::size_t qi = 0; qi < s.queue.size(); ++qi) {
    const int d = s.queue[qi];
    const ClockNode& dn = tree.node(d);

    // Net load first (one RC build), then a single NLDM lookup at the true
    // load: the driver's own delay and slew are computed exactly once.
    if (!dn.children.empty()) {
      const route::SteinerTree* net = routing.net(d);
      if (net == nullptr)
        throw std::logic_error("Timer: driver " + std::to_string(d) +
                               " has children but no routed net");
      buildNetRc(*tech_, tree, d, *net, corner, s.rct, s.pin_rc, s.rc_of);
      t.driver_load[static_cast<std::size_t>(d)] = s.rct.totalCap();
    } else {
      t.driver_load[static_cast<std::size_t>(d)] = 0.0;
    }

    if (dn.kind == NodeKind::Buffer) {
      // Convert input-pin arrival into output arrival through the cell.
      const tech::Cell& cell = tech_->cell(static_cast<std::size_t>(dn.cell));
      const double load = t.driver_load[static_cast<std::size_t>(d)];
      const double si = t.in_slew[static_cast<std::size_t>(d)];
      t.arrival[static_cast<std::size_t>(d)] =
          t.in_arrival[static_cast<std::size_t>(d)] +
          cell.delay[corner].lookup(si, load, &s.delay_hint);
      t.slew[static_cast<std::size_t>(d)] =
          cell.out_slew[corner].lookup(si, load, &s.slew_hint);
    }
    if (dn.children.empty()) continue;

    rc::elmoreDelaysInto(s.rct, s.elmore, s.cdown);
    for (std::size_t i = 0; i < dn.children.size(); ++i) {
      const int c = dn.children[i];
      const double wire_delay = s.elmore[s.pin_rc[i]];
      const double step_slew = rc::wireSlewFromElmore(wire_delay);
      const double in_arr =
          t.arrival[static_cast<std::size_t>(d)] + wire_delay;
      const double in_slew =
          rc::periSlew(t.slew[static_cast<std::size_t>(d)], step_slew);
      t.in_arrival[static_cast<std::size_t>(c)] = in_arr;
      t.in_slew[static_cast<std::size_t>(c)] = in_slew;
      if (tree.node(c).kind == NodeKind::Sink) {
        t.arrival[static_cast<std::size_t>(c)] = in_arr;
        t.slew[static_cast<std::size_t>(c)] = in_slew;
      } else {
        s.queue.push_back(c);
      }
    }
  }
}

void Timer::propagateFromAllCorners(const ClockTree& tree,
                                    const Routing& routing,
                                    std::span<const std::size_t> corners,
                                    int start, std::span<CornerTiming> timings,
                                    PropagateScratch* scratch) const {
  static obs::Counter& evals = obs::MetricsRegistry::global().counter(
      "skewopt_sta_batch_evals_total",
      "Corner-lane driver evaluations performed by batched propagation");
  const std::size_t K = corners.size();
  assert(timings.size() == K);
  if (K == 0) return;

  const std::size_t n = tree.numNodes();
  for (std::size_t ki = 0; ki < K; ++ki) {
    CornerTiming& t = timings[ki];
    assert(t.corner == corners[ki]);
    if (t.arrival.size() < n) {
      t.arrival.resize(n, 0.0);
      t.slew.resize(n, 0.0);
      t.in_arrival.resize(n, 0.0);
      t.in_slew.resize(n, 0.0);
      t.driver_load.resize(n, 0.0);
    }
  }
  PropagateScratch local;
  PropagateScratch& s = scratch ? *scratch : local;
  // K-wide staging: load, input slew, delay result, out-slew result (the
  // first 2K entries of s.lanes are claimed by buildNetRcBatch).
  s.lanes.resize(6 * K);
  double* load_l = s.lanes.data() + 2 * K;
  double* si_l = load_l + K;
  double* delay_l = si_l + K;
  double* oslew_l = delay_l + K;
  std::uint64_t lane_evals = 0;

  // The BFS order is corner-independent (one queue serves all corners);
  // per driver the RC view is built once with a lane per corner, Elmore
  // runs over all lanes in one walk, and the two NLDM lookups read the
  // cell's corner-major packed tables.
  s.queue.clear();
  s.queue.push_back(start);
  if (start == tree.root()) {
    for (std::size_t ki = 0; ki < K; ++ki) {
      timings[ki].slew[0] = source_slew_ps_;
      timings[ki].arrival[0] = 0.0;
    }
  }
  for (std::size_t qi = 0; qi < s.queue.size(); ++qi) {
    const int d = s.queue[qi];
    const std::size_t di = static_cast<std::size_t>(d);
    const ClockNode& dn = tree.node(d);
    lane_evals += K;

    if (!dn.children.empty()) {
      const route::SteinerTree* net = routing.net(d);
      if (net == nullptr)
        throw std::logic_error("Timer: driver " + std::to_string(d) +
                               " has children but no routed net");
      buildNetRcBatch(*tech_, tree, d, *net, corners, s.rct_batch, s.pin_rc,
                      s.lanes);
      s.rct_batch.totalCapInto(load_l);
      for (std::size_t ki = 0; ki < K; ++ki)
        timings[ki].driver_load[di] = load_l[ki];
    } else {
      for (std::size_t ki = 0; ki < K; ++ki) {
        timings[ki].driver_load[di] = 0.0;
        load_l[ki] = 0.0;
      }
    }

    if (dn.kind == NodeKind::Buffer) {
      const tech::Cell& cell = tech_->cell(static_cast<std::size_t>(dn.cell));
      for (std::size_t ki = 0; ki < K; ++ki) si_l[ki] = timings[ki].in_slew[di];
      cell.delay_packed.lookupEach(corners, si_l, load_l, delay_l,
                                   &s.delay_hint);
      cell.out_slew_packed.lookupEach(corners, si_l, load_l, oslew_l,
                                      &s.slew_hint);
      for (std::size_t ki = 0; ki < K; ++ki) {
        timings[ki].arrival[di] = timings[ki].in_arrival[di] + delay_l[ki];
        timings[ki].slew[di] = oslew_l[ki];
      }
    }
    if (dn.children.empty()) continue;

    rc::elmoreDelaysBatch(s.rct_batch, s.elmore_batch, s.cdown_batch);
    for (std::size_t i = 0; i < dn.children.size(); ++i) {
      const int c = dn.children[i];
      const std::size_t ci = static_cast<std::size_t>(c);
      const double* wire = s.elmore_batch.data() + s.pin_rc[i] * K;
      const bool is_sink = tree.node(c).kind == NodeKind::Sink;
      for (std::size_t ki = 0; ki < K; ++ki) {
        CornerTiming& t = timings[ki];
        const double wire_delay = wire[ki];
        const double step_slew = rc::wireSlewFromElmore(wire_delay);
        const double in_arr = t.arrival[di] + wire_delay;
        const double in_slew = rc::periSlew(t.slew[di], step_slew);
        t.in_arrival[ci] = in_arr;
        t.in_slew[ci] = in_slew;
        if (is_sink) {
          t.arrival[ci] = in_arr;
          t.slew[ci] = in_slew;
        }
      }
      if (!is_sink) s.queue.push_back(c);
    }
  }
  evals.add(lane_evals);
}

std::vector<CornerTiming> Timer::analyzeDesign(
    const network::Design& d) const {
  static obs::Counter& analyses = obs::MetricsRegistry::global().counter(
      "skewopt_sta_full_analyses_total",
      "Full multi-corner STA passes over a design");
  analyses.add();
  const std::size_t n = d.tree.numNodes();
  std::vector<CornerTiming> out(d.corners.size());
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    CornerTiming& t = out[ki];
    t.corner = d.corners[ki];
    t.arrival.assign(n, 0.0);
    t.slew.assign(n, 0.0);
    t.in_arrival.assign(n, 0.0);
    t.in_slew.assign(n, 0.0);
    t.driver_load.assign(n, 0.0);
  }
  propagateFromAllCorners(d.tree, d.routing, d.corners, d.tree.root(), out);
  return out;
}

std::vector<double> Timer::sinkLatencies(const ClockTree& tree,
                                         const Routing& routing,
                                         std::size_t corner,
                                         const std::vector<int>& sinks) const {
  const CornerTiming t = analyze(tree, routing, corner);
  std::vector<double> lat;
  lat.reserve(sinks.size());
  for (const int s : sinks) lat.push_back(t.arrival[static_cast<std::size_t>(s)]);
  return lat;
}

double Timer::worstLoadRatio(const ClockTree& tree, const Routing& routing,
                             std::size_t corner) const {
  const CornerTiming t = analyze(tree, routing, corner);
  double worst = 0.0;
  for (std::size_t i = 0; i < tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (!tree.isValid(id)) continue;
    const ClockNode& n = tree.node(id);
    if (n.kind != NodeKind::Buffer || n.children.empty()) continue;
    const double cap = tech_->cell(static_cast<std::size_t>(n.cell)).max_cap_ff;
    worst = std::max(worst, t.driver_load[i] / cap);
  }
  return worst;
}

double clockTreePowerMw(const network::Design& d, std::size_t corner) {
  const tech::TechModel& tech = *d.tech;
  const tech::Corner& c = tech.corner(corner);
  const double f_ghz = tech.clockFreqGhz();

  // Switching: every routed wire segment and every input pin toggles once
  // per clock edge pair: E = C * V^2 per cycle.
  double cap_ff = d.routing.totalWirelength() * tech.wire(corner).cap_ff_per_um;
  double internal_uw = 0.0;
  double leakage_nw = 0.0;
  for (std::size_t i = 0; i < d.tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (!d.tree.isValid(id)) continue;
    const ClockNode& n = d.tree.node(id);
    if (n.kind == NodeKind::Buffer) {
      const tech::Cell& cell = tech.cell(static_cast<std::size_t>(n.cell));
      cap_ff += cell.pin_cap_ff[corner];
      internal_uw += cell.internal_energy_fj[corner] * f_ghz;  // fJ*GHz = uW
      leakage_nw += cell.leakage_nw[corner];
    } else if (n.kind == NodeKind::Sink) {
      cap_ff += tech.sinkCapFf(corner);
    }
  }
  const double switching_uw = cap_ff * c.voltage * c.voltage * f_ghz;
  return (switching_uw + internal_uw + leakage_nw * 1e-3) * 1e-3;  // mW
}

double sumNormalizedSkewVariation(const network::Design& d,
                                  const Timer& timer) {
  const std::vector<CornerTiming> t = timer.analyzeDesign(d);
  const std::size_t nk = d.corners.size();
  std::vector<double> sum_abs(nk, 0.0);
  std::vector<std::vector<double>> skew(nk,
                                        std::vector<double>(d.pairs.size()));
  for (std::size_t pi = 0; pi < d.pairs.size(); ++pi) {
    for (std::size_t ki = 0; ki < nk; ++ki) {
      skew[ki][pi] =
          t[ki].arrival[static_cast<std::size_t>(d.pairs[pi].launch)] -
          t[ki].arrival[static_cast<std::size_t>(d.pairs[pi].capture)];
      sum_abs[ki] += std::abs(skew[ki][pi]);
    }
  }
  std::vector<double> alpha(nk, 1.0);
  for (std::size_t ki = 1; ki < nk; ++ki)
    alpha[ki] = sum_abs[ki] > 1e-9 ? sum_abs[0] / sum_abs[ki] : 1.0;
  double total = 0.0;
  for (std::size_t pi = 0; pi < d.pairs.size(); ++pi) {
    double v = 0.0;
    for (std::size_t a = 0; a < nk; ++a)
      for (std::size_t b = a + 1; b < nk; ++b)
        v = std::max(v, std::abs(alpha[a] * skew[a][pi] -
                                 alpha[b] * skew[b][pi]));
    total += v;
  }
  return total;
}

double clockCellAreaUm2(const network::Design& d) {
  double a = 0.0;
  for (std::size_t i = 0; i < d.tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (!d.tree.isValid(id)) continue;
    const ClockNode& n = d.tree.node(id);
    if (n.kind == NodeKind::Buffer)
      a += d.tech->cell(static_cast<std::size_t>(n.cell)).area_um2;
  }
  return a;
}

}  // namespace skewopt::sta
