// Human-readable timing and skew reports — the PrimeTime-style output a
// clock designer reads after each optimization step. Used by the CLI and
// the examples; all data comes from the golden timer.
#pragma once

#include <iosfwd>

#include "network/design.h"
#include "sta/timer.h"

namespace skewopt::sta {

struct ReportOptions {
  std::size_t worst_pairs = 10;   ///< pairs listed in the skew section
  std::size_t histogram_bins = 10;
  bool per_sink_latency = false;  ///< full latency table (verbose)
};

/// Full multi-corner clock report: latency summary and histogram per
/// corner, the worst skew pairs per corner, and the worst normalized
/// variation pairs.
void writeTimingReport(std::ostream& os, const network::Design& d,
                       const Timer& timer, const ReportOptions& opts = {});

}  // namespace skewopt::sta
