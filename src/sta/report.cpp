#include "sta/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <vector>

namespace skewopt::sta {

namespace {

struct PairView {
  std::size_t index;
  double value;
};

std::vector<PairView> topBy(std::vector<PairView> v, std::size_t n) {
  std::sort(v.begin(), v.end(), [](const PairView& a, const PairView& b) {
    return std::abs(a.value) > std::abs(b.value);
  });
  if (v.size() > n) v.resize(n);
  return v;
}

}  // namespace

void writeTimingReport(std::ostream& os, const network::Design& d,
                       const Timer& timer, const ReportOptions& opts) {
  const std::vector<CornerTiming> timing = timer.analyzeDesign(d);
  const std::vector<int> sinks = d.tree.sinks();
  os << "==== clock timing report: " << d.name << " ====\n";
  os << "sinks " << sinks.size() << ", buffers " << d.tree.numBuffers()
     << ", routed wire " << std::fixed << std::setprecision(0)
     << d.routing.totalWirelength() << " um, pairs " << d.pairs.size()
     << "\n";

  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    const tech::Corner& c = d.tech->corner(d.corners[ki]);
    double lo = 1e300, hi = -1e300, sum = 0.0;
    for (const int s : sinks) {
      const double a = timing[ki].arrival[static_cast<std::size_t>(s)];
      lo = std::min(lo, a);
      hi = std::max(hi, a);
      sum += a;
    }
    const double mean = sinks.empty() ? 0.0 : sum / static_cast<double>(sinks.size());
    os << "\ncorner " << c.name << " (" << std::setprecision(2)
       << c.voltage << "V " << std::setprecision(0) << c.temp_c
       << "C): latency min/mean/max = " << std::setprecision(1) << lo << "/"
       << mean << "/" << hi << " ps, global skew " << (hi - lo) << " ps\n";

    // Latency histogram.
    const std::size_t bins = opts.histogram_bins;
    std::vector<int> hist(bins, 0);
    for (const int s : sinks) {
      const double a = timing[ki].arrival[static_cast<std::size_t>(s)];
      std::size_t b = static_cast<std::size_t>((a - lo) / (hi - lo + 1e-12) *
                                               static_cast<double>(bins));
      b = std::min(b, bins - 1);
      ++hist[b];
    }
    for (std::size_t b = 0; b < bins; ++b) {
      os << "  [" << std::setw(7) << std::setprecision(1)
         << lo + static_cast<double>(b) * (hi - lo) / static_cast<double>(bins)
         << " - " << std::setw(7)
         << lo + static_cast<double>(b + 1) * (hi - lo) /
                     static_cast<double>(bins)
         << ") ";
      const int stars =
          hist[b] * 40 / std::max<int>(1, static_cast<int>(sinks.size()));
      for (int i = 0; i < stars; ++i) os << '#';
      os << ' ' << hist[b] << "\n";
    }

    if (opts.per_sink_latency) {
      os << "  per-sink latency (ps):\n";
      for (const int s : sinks)
        os << "    " << d.tree.node(s).name << " "
           << std::setprecision(2)
           << timing[ki].arrival[static_cast<std::size_t>(s)] << "\n";
    }

    // Worst skew pairs at this corner.
    std::vector<PairView> views;
    for (std::size_t pi = 0; pi < d.pairs.size(); ++pi) {
      const network::SinkPair& p = d.pairs[pi];
      views.push_back(
          {pi, timing[ki].arrival[static_cast<std::size_t>(p.launch)] -
                   timing[ki].arrival[static_cast<std::size_t>(p.capture)]});
    }
    os << "  worst skew pairs:\n";
    for (const PairView& v : topBy(views, opts.worst_pairs)) {
      const network::SinkPair& p = d.pairs[v.index];
      os << "    " << d.tree.node(p.launch).name << " -> "
         << d.tree.node(p.capture).name << " : " << std::setprecision(1)
         << v.value << " ps\n";
    }
  }

  // Worst normalized variation pairs (the paper's objective terms).
  const double total = sumNormalizedSkewVariation(d, timer);
  os << "\nsum of normalized skew variations: " << std::setprecision(1)
     << total << " ps over " << d.pairs.size() << " pairs\n";
  os << "==== end report ====\n";
}

}  // namespace skewopt::sta
