// Incremental multi-corner timing.
//
// Local moves and ECO rebuilds touch a handful of nets; everything outside
// the touched drivers' subtrees keeps its arrival and slew. This class
// holds the full multi-corner timing state of one design and re-propagates
// only the dirty subtrees after an edit — the reproduction-scale analogue
// of the incremental analysis commercial timers perform between ECOs, and
// the reason scoring thousands of candidate moves per round is affordable.
//
// Usage:
//   IncrementalTimer inc(tech, design);           // full analysis
//   ... edit design, rebuilding nets of drivers D ...
//   inc.update(design, D);                        // retimes subtrees of D
//   inc.timing(ki).arrival[sink]                  // fresh latencies
//
// `update` requires that every driver whose net, cell, or placement changed
// (or whose child's pin cap changed) is in the dirty set — or is a
// descendant of one that is. Results are bit-identical to a full re-analysis
// (asserted by tests).
#pragma once

#include <vector>

#include "sta/timer.h"

namespace skewopt::sta {

class IncrementalTimer {
 public:
  IncrementalTimer(const tech::TechModel& tech, const network::Design& d)
      : timer_(tech), corners_(d.corners) {
    timing_.reserve(corners_.size());
    for (const std::size_t k : corners_)
      timing_.push_back(timer_.analyze(d.tree, d.routing, k));
  }

  /// Re-times the subtrees of the dirty drivers at every active corner.
  /// Drivers covered by another dirty driver's subtree are skipped.
  void update(const network::Design& d, const std::vector<int>& dirty) {
    const std::vector<int> roots = minimalRoots(d.tree, dirty);
    for (std::size_t ki = 0; ki < corners_.size(); ++ki)
      for (const int r : roots)
        timer_.propagateFrom(d.tree, d.routing, corners_[ki], r,
                             &timing_[ki]);
  }

  const CornerTiming& timing(std::size_t ki) const { return timing_[ki]; }
  std::size_t numCorners() const { return corners_.size(); }
  const Timer& timer() const { return timer_; }

  /// Latency views in the layout Objective::evaluateFromLatencies expects.
  std::vector<std::vector<double>> latencies() const {
    std::vector<std::vector<double>> lat(timing_.size());
    for (std::size_t ki = 0; ki < timing_.size(); ++ki)
      lat[ki] = timing_[ki].arrival;
    return lat;
  }

 private:
  /// Drops dirty drivers that sit inside another dirty driver's subtree.
  static std::vector<int> minimalRoots(const network::ClockTree& tree,
                                       std::vector<int> dirty) {
    std::vector<int> roots;
    for (const int d : dirty) {
      if (!tree.isValid(d)) continue;
      bool covered = false;
      for (const int other : dirty) {
        if (other == d || !tree.isValid(other)) continue;
        if (tree.isAncestorOrSelf(other, d) && other != d) {
          covered = true;
          break;
        }
      }
      if (!covered) roots.push_back(d);
    }
    return roots;
  }

  Timer timer_;
  std::vector<std::size_t> corners_;
  std::vector<CornerTiming> timing_;
};

}  // namespace skewopt::sta
