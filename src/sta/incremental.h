// Incremental multi-corner timing.
//
// Local moves and ECO rebuilds touch a handful of nets; everything outside
// the touched drivers' subtrees keeps its arrival and slew. This class
// holds the full multi-corner timing state of one design and re-propagates
// only the dirty subtrees after an edit — the reproduction-scale analogue
// of the incremental analysis commercial timers perform between ECOs, and
// the reason scoring thousands of candidate moves per round is affordable.
//
// Usage:
//   IncrementalTimer inc(tech, design);           // full analysis
//   ... edit design, rebuilding nets of drivers D ...
//   inc.update(design, D);                        // retimes subtrees of D
//   inc.timing(ki).arrival[sink]                  // fresh latencies
//
// `update` requires that every driver whose net, cell, or placement changed
// (or whose child's pin cap changed) is in the dirty set — or is a
// descendant of one that is. Results are bit-identical to a full re-analysis
// (asserted by tests).
//
// For trial evaluation (apply a move, look at the timing, take it back),
// ScopedRetime below retimes the dirty subtrees *in place* and rolls the
// overwritten entries back — no copy of the full corner arrays per trial.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "sta/timer.h"

namespace skewopt::sta {

class ScopedRetime;

class IncrementalTimer {
 public:
  IncrementalTimer(const tech::TechModel& tech, const network::Design& d)
      : timer_(tech), corners_(d.corners) {
    const std::size_t n = d.tree.numNodes();
    timing_.resize(corners_.size());
    for (std::size_t ki = 0; ki < corners_.size(); ++ki) {
      CornerTiming& t = timing_[ki];
      t.corner = corners_[ki];
      t.arrival.assign(n, 0.0);
      t.slew.assign(n, 0.0);
      t.in_arrival.assign(n, 0.0);
      t.in_slew.assign(n, 0.0);
      t.driver_load.assign(n, 0.0);
    }
    timer_.propagateFromAllCorners(d.tree, d.routing, corners_,
                                   d.tree.root(), timing_, &scratch_);
  }

  /// Seeds the timer from a cached per-corner timing snapshot instead of a
  /// full analysis, then re-propagates only the subtrees of `dirty` — the
  /// cross-job warm-start entry point: a delta job re-times just the
  /// subtrees its edit touched. The snapshot must come from a design with
  /// the same node count and active corners as `d` (the caller verifies
  /// this via its topology key / fingerprint before seeding); `dirty` must
  /// cover every driver whose net, cell, or placement differs between the
  /// snapshot's design and `d`, and may be empty when nothing differs.
  /// Seed + update is bit-identical to the full-analysis constructor
  /// (asserted by sta_test).
  IncrementalTimer(const tech::TechModel& tech, const network::Design& d,
                   std::vector<CornerTiming> snapshot,
                   const std::vector<int>& dirty)
      : timer_(tech), corners_(d.corners), timing_(std::move(snapshot)) {
    if (timing_.size() != corners_.size())
      throw std::invalid_argument("IncrementalTimer: snapshot corner count");
    for (std::size_t ki = 0; ki < timing_.size(); ++ki) {
      if (timing_[ki].corner != corners_[ki] ||
          timing_[ki].arrival.size() != d.tree.numNodes())
        throw std::invalid_argument("IncrementalTimer: snapshot shape");
    }
    if (!dirty.empty()) update(d, dirty);
  }

  /// Grows every per-node array to `n` entries (zeros appended) so a
  /// retime can follow an edit that *added* tree nodes (ECO buffer
  /// insertion); the new nodes must be inside a subsequently dirtied
  /// subtree. Shrinking is never needed — removed ids just go stale.
  void ensureSize(std::size_t n) {
    for (CornerTiming& t : timing_) {
      if (t.arrival.size() >= n) continue;
      t.arrival.resize(n, 0.0);
      t.slew.resize(n, 0.0);
      t.in_arrival.resize(n, 0.0);
      t.in_slew.resize(n, 0.0);
      t.driver_load.resize(n, 0.0);
    }
  }

  /// Re-times the subtrees of the dirty drivers at every active corner.
  /// Drivers covered by another dirty driver's subtree are skipped.
  void update(const network::Design& d, const std::vector<int>& dirty) {
    static obs::Counter& updates = obs::MetricsRegistry::global().counter(
        "skewopt_sta_incremental_updates_total",
        "Committed incremental retimes of dirty subtrees");
    updates.add();
    const std::vector<int> roots = minimalRoots(d.tree, dirty);
    for (const int r : roots)
      timer_.propagateFromAllCorners(d.tree, d.routing, corners_, r,
                                     timing_, &scratch_);
  }

  const CornerTiming& timing(std::size_t ki) const { return timing_[ki]; }
  /// All active-corner timing states, in design-corner order.
  const std::vector<CornerTiming>& timings() const { return timing_; }
  std::size_t numCorners() const { return corners_.size(); }
  const Timer& timer() const { return timer_; }

  /// Latency views in the layout Objective::evaluateFromLatencies expects.
  std::vector<std::vector<double>> latencies() const {
    std::vector<std::vector<double>> lat(timing_.size());
    for (std::size_t ki = 0; ki < timing_.size(); ++ki)
      lat[ki] = timing_[ki].arrival;
    return lat;
  }

  /// Drops dirty drivers that sit inside another dirty driver's subtree.
  static std::vector<int> minimalRoots(const network::ClockTree& tree,
                                       const std::vector<int>& dirty) {
    std::vector<int> roots;
    minimalRootsInto(tree, dirty, roots);
    return roots;
  }

  /// minimalRoots into a reused output vector (allocation-free when warm).
  static void minimalRootsInto(const network::ClockTree& tree,
                               const std::vector<int>& dirty,
                               std::vector<int>& roots) {
    roots.clear();
    for (const int d : dirty) {
      if (!tree.isValid(d)) continue;
      bool covered = false;
      for (const int other : dirty) {
        if (other == d || !tree.isValid(other)) continue;
        if (tree.isAncestorOrSelf(other, d) && other != d) {
          covered = true;
          break;
        }
      }
      if (!covered) roots.push_back(d);
    }
  }

 private:
  friend class ScopedRetime;

  Timer timer_;
  std::vector<std::size_t> corners_;
  std::vector<CornerTiming> timing_;
  PropagateScratch scratch_;  // reused across updates
};

/// Copy-free trial retiming: re-times a move's dirty subtrees directly
/// inside a base IncrementalTimer, saving the overwritten entries into
/// reusable scratch buffers, and restores them bit-identically on
/// rollback() (or destruction). One ScopedRetime is meant to live as a
/// worker's persistent scratch and be cycled retime()/rollback() once per
/// trial — the buffers are reused, so steady-state trials allocate nothing.
///
/// Contract: retime() is called with the *edited* design and the same
/// dirty-driver set IncrementalTimer::update would take; the edit must not
/// have added tree nodes (local moves never do), and the base timer must be
/// rolled back before it is read as the clean base, updated, or retimed
/// again.
class ScopedRetime {
 public:
  explicit ScopedRetime(IncrementalTimer& base) : base_(&base) {}
  ~ScopedRetime() { rollback(); }
  ScopedRetime(const ScopedRetime&) = delete;
  ScopedRetime& operator=(const ScopedRetime&) = delete;

  void retime(const network::Design& d, const std::vector<int>& dirty) {
    static obs::Counter& retimes = obs::MetricsRegistry::global().counter(
        "skewopt_sta_scoped_retimes_total",
        "Trial (rolled-back) scoped retimes");
    retimes.add();
    rollback();
    IncrementalTimer::minimalRootsInto(d.tree, dirty, roots_);

    // Every entry propagateFrom can write lives in the union of the dirty
    // roots' subtrees (minimalRoots guarantees the subtrees are disjoint).
    touched_.clear();
    for (const int r : roots_) {
      stack_.push_back(r);
      while (!stack_.empty()) {
        const int v = stack_.back();
        stack_.pop_back();
        touched_.push_back(v);
        for (const int c : d.tree.node(v).children) stack_.push_back(c);
      }
    }

    const std::size_t nk = base_->timing_.size();
    saved_.resize(touched_.size() * nk * 5);
    std::size_t w = 0;
    for (std::size_t ki = 0; ki < nk; ++ki) {
      const CornerTiming& t = base_->timing_[ki];
      for (const int v : touched_) {
        const std::size_t i = static_cast<std::size_t>(v);
        saved_[w++] = t.arrival[i];
        saved_[w++] = t.slew[i];
        saved_[w++] = t.in_arrival[i];
        saved_[w++] = t.in_slew[i];
        saved_[w++] = t.driver_load[i];
      }
    }

    for (const int r : roots_)
      base_->timer_.propagateFromAllCorners(d.tree, d.routing,
                                            base_->corners_, r,
                                            base_->timing_, &scratch_);
    active_ = true;
  }

  /// Restores the base timing exactly as it was before retime(); no-op if
  /// nothing is overlaid.
  void rollback() {
    if (!active_) return;
    const std::size_t nk = base_->timing_.size();
    std::size_t w = 0;
    for (std::size_t ki = 0; ki < nk; ++ki) {
      CornerTiming& t = base_->timing_[ki];
      for (const int v : touched_) {
        const std::size_t i = static_cast<std::size_t>(v);
        t.arrival[i] = saved_[w++];
        t.slew[i] = saved_[w++];
        t.in_arrival[i] = saved_[w++];
        t.in_slew[i] = saved_[w++];
        t.driver_load[i] = saved_[w++];
      }
    }
    active_ = false;
  }

  const IncrementalTimer& base() const { return *base_; }

 private:
  IncrementalTimer* base_;
  bool active_ = false;
  std::vector<int> roots_;
  std::vector<int> stack_;    // DFS scratch
  std::vector<int> touched_;  // nodes whose entries are saved
  std::vector<double> saved_;  // [corner][touched][5] overwritten values
  PropagateScratch scratch_;  // propagation buffers reused across trials
};

}  // namespace skewopt::sta
