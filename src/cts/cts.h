// Baseline clock-tree synthesis — the reproduction's stand-in for the
// "leading commercial tool" whose best-practices CTS output the paper
// optimizes (its Sec. 5.1: skew target 0, MCMM scenario).
//
// The engine builds a buffered tree in the style production CTS tools use:
//   1. recursive geometric partitioning of the sinks (quadrant splits down
//      to a bounded leaf fanout) giving a balanced topology;
//   2. buffers at cluster centroids, long edges broken with inverter-pair
//      repeater chains (so the tree has real multi-buffer arcs for the
//      global optimizer to re-engineer);
//   3. load-driven bottom-up buffer sizing;
//   4. iterative useful-wire-snaking skew balancing at the balance corner
//      toward a 0ps skew target.
//
// The result intentionally has small nominal skew but residual cross-corner
// skew variation — exactly the starting condition of the paper's Table 5
// "orig" rows.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "network/design.h"
#include "sta/timer.h"

namespace skewopt::cts {

struct CtsOptions {
  std::size_t leaf_fanout = 12;     ///< max sinks per leaf buffer
  std::size_t branch_fanout = 4;    ///< max children per upper-level buffer
  double max_stage_len_um = 110.0;  ///< break longer edges with repeaters
  std::size_t balance_iterations = 24;
  double skew_target_ps = 0.0;      ///< paper best practice: 0ps target
  std::size_t default_cell = 2;     ///< library index used before sizing
  double load_margin = 0.7;         ///< size so load <= margin * max_cap
};

struct CtsResult {
  std::vector<int> sink_ids;  ///< tree node id of each input sink position
  double balanced_skew_ps = 0.0;  ///< achieved local skew at balance corner
  std::size_t inserted_buffers = 0;
  /// Scenario that won when synthesizeBestScenario() was used: the corner
  /// id the winning balance targeted (MCSM), or SIZE_MAX for the MCMM
  /// multi-corner balance.
  std::size_t chosen_scenario = 0;
};

class CtsEngine {
 public:
  CtsEngine(const tech::TechModel& tech, CtsOptions opts = {})
      : tech_(&tech), opts_(opts), timer_(tech) {}

  /// Populates d.tree (which must be freshly constructed with only its
  /// source) and d.routing with a synthesized tree over `sink_pos`. The
  /// balance corner is the first entry of d.corners.
  CtsResult synthesize(network::Design& d,
                       const std::vector<geom::Point>& sink_pos) const;

  /// The paper's Sec. 5.1 scenario selection: synthesizes once per MCSM
  /// scenario (balancing at each active corner in turn) and once with an
  /// MCMM multi-corner balance (equal-weight average latency), evaluates
  /// the sum of normalized skew variations of each candidate, and keeps
  /// the minimum. `d.pairs` must already be meaningful for the sink order
  /// returned (pairs index into sink_ids positions; see the test for the
  /// calling pattern) — in practice callers pass a pair-builder callback.
  CtsResult synthesizeBestScenario(
      network::Design& d, const std::vector<geom::Point>& sink_pos,
      const std::function<std::vector<network::SinkPair>(
          const std::vector<int>& sink_ids)>& make_pairs) const;

  /// Effective drive resistance (kOhm) of a cell at a corner, estimated
  /// from the slope of its NLDM delay table. Shared with the balancer and
  /// exported for tests.
  static double effectiveDriveRes(const tech::Cell& cell, std::size_t corner);

 private:
  void sizeBuffers(network::Design& d) const;
  /// Balances using a blended arrival: one corner (MCSM) or the normalized
  /// average over several (MCMM).
  double balance(network::Design& d, const std::vector<int>& sinks,
                 const std::vector<std::size_t>& bal_corners) const;
  CtsResult synthesizeWithScenario(
      network::Design& d, const std::vector<geom::Point>& sink_pos,
      const std::vector<std::size_t>& bal_corners) const;

  const tech::TechModel* tech_;
  CtsOptions opts_;
  sta::Timer timer_;
};

}  // namespace skewopt::cts
