#include "cts/cts.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace skewopt::cts {

using geom::Point;
using network::ClockNode;
using network::ClockTree;
using network::Design;
using network::NodeKind;

namespace {

/// Geometric cluster hierarchy over sink indices.
struct Cluster {
  Point centroid;
  std::vector<int> sinks;             // leaf payload
  std::vector<Cluster> children;      // internal payload
  bool leaf() const { return children.empty(); }
};

Point centroidOf(const std::vector<Point>& pos, const std::vector<int>& idx) {
  Point c;
  for (const int i : idx) {
    c.x += pos[static_cast<std::size_t>(i)].x;
    c.y += pos[static_cast<std::size_t>(i)].y;
  }
  const double n = static_cast<double>(idx.size());
  return {c.x / n, c.y / n};
}

// Splits `idx` at the median along the longer bbox dimension.
void medianSplit(const std::vector<Point>& pos, std::vector<int> idx,
                 std::vector<int>* a, std::vector<int>* b) {
  geom::BBox box;
  for (const int i : idx) box.add(pos[static_cast<std::size_t>(i)]);
  const bool by_x = box.rect().width() >= box.rect().height();
  std::sort(idx.begin(), idx.end(), [&](int l, int r) {
    const Point& pl = pos[static_cast<std::size_t>(l)];
    const Point& pr = pos[static_cast<std::size_t>(r)];
    const double vl = by_x ? pl.x : pl.y;
    const double vr = by_x ? pr.x : pr.y;
    return vl != vr ? vl < vr : l < r;
  });
  const std::size_t mid = idx.size() / 2;
  a->assign(idx.begin(), idx.begin() + static_cast<long>(mid));
  b->assign(idx.begin() + static_cast<long>(mid), idx.end());
}

// Builds a *depth-balanced* hierarchy: every leaf cluster sits at exactly
// `depth` more levels, so all sinks see the same number of buffer stages —
// the dominant term of nominal skew is then wire mismatch, which the
// snaking balancer can close, rather than whole missing gate stages, which
// it cannot.
Cluster buildHierarchy(const std::vector<Point>& pos, std::vector<int> idx,
                       const CtsOptions& opts, int depth) {
  Cluster c;
  c.centroid = centroidOf(pos, idx);
  if (depth == 0 || idx.size() <= 1) {
    c.sinks = std::move(idx);
    return c;
  }
  std::vector<std::vector<int>> parts;
  std::vector<int> lo, hi;
  medianSplit(pos, idx, &lo, &hi);
  if (opts.branch_fanout >= 4 && lo.size() > 1 && hi.size() > 1) {
    std::vector<int> a, b;
    medianSplit(pos, lo, &a, &b);
    parts.push_back(std::move(a));
    parts.push_back(std::move(b));
    medianSplit(pos, hi, &a, &b);
    parts.push_back(std::move(a));
    parts.push_back(std::move(b));
  } else {
    parts.push_back(std::move(lo));
    parts.push_back(std::move(hi));
  }
  for (auto& p : parts) {
    if (p.empty()) continue;
    c.children.push_back(buildHierarchy(pos, std::move(p), opts, depth - 1));
  }
  return c;
}

// Levels of 4-way splits needed so leaf clusters hold <= leaf_fanout sinks.
int hierarchyDepth(std::size_t sinks, const CtsOptions& opts) {
  int depth = 0;
  double remaining = static_cast<double>(sinks);
  while (remaining > static_cast<double>(opts.leaf_fanout)) {
    remaining /= static_cast<double>(std::max<std::size_t>(
        2, opts.branch_fanout));
    ++depth;
  }
  return depth;
}

}  // namespace

double CtsEngine::effectiveDriveRes(const tech::Cell& cell,
                                    std::size_t corner) {
  const double lo = 4.0, hi = 32.0;
  const double d_lo = cell.delay[corner].lookup(30.0, lo);
  const double d_hi = cell.delay[corner].lookup(30.0, hi);
  return (d_hi - d_lo) / (hi - lo);
}

CtsResult CtsEngine::synthesize(Design& d,
                                const std::vector<Point>& sink_pos) const {
  return synthesizeWithScenario(d, sink_pos, {d.corners.empty()
                                                  ? std::size_t{0}
                                                  : d.corners.front()});
}

CtsResult CtsEngine::synthesizeWithScenario(
    Design& d, const std::vector<Point>& sink_pos,
    const std::vector<std::size_t>& bal_corners) const {
  if (sink_pos.empty())
    throw std::invalid_argument("CtsEngine: no sinks");
  if (d.corners.empty())
    throw std::invalid_argument("CtsEngine: design has no active corners");
  ClockTree& tree = d.tree;
  if (tree.numNodes() != 1)
    throw std::invalid_argument("CtsEngine: tree must be source-only");

  CtsResult result;
  result.sink_ids.assign(sink_pos.size(), -1);

  // 1-2. Topology: buffers at cluster centroids, sinks under leaf buffers.
  std::vector<int> all(sink_pos.size());
  std::iota(all.begin(), all.end(), 0);
  const Cluster top = buildHierarchy(sink_pos, std::move(all), opts_,
                                     hierarchyDepth(sink_pos.size(), opts_));

  const int cell = static_cast<int>(opts_.default_cell);
  // Recursive lambda over the hierarchy.
  auto emit = [&](auto&& self, const Cluster& c, int parent) -> void {
    const int buf = tree.addBuffer(parent, c.centroid, cell);
    if (c.leaf()) {
      for (const int s : c.sinks)
        result.sink_ids[static_cast<std::size_t>(s)] =
            tree.addSink(buf, sink_pos[static_cast<std::size_t>(s)]);
      return;
    }
    for (const Cluster& ch : c.children) self(self, ch, buf);
  };
  emit(emit, top, tree.root());

  // 3. Repeater chains (inverter pairs, preserving polarity) on long edges.
  //    Stage counts are equalized among siblings of a driver so every path
  //    through the driver crosses the same number of gates — residual
  //    mismatch is then pure wire, which the snaking balancer can close.
  const std::size_t node_count_before_chains = tree.numNodes();
  for (std::size_t i = 0; i < node_count_before_chains; ++i) {
    const int drv = static_cast<int>(i);
    if (!tree.isValid(drv)) continue;
    const std::vector<int> kids = tree.node(drv).children;  // snapshot
    if (kids.empty()) continue;
    bool all_sinks = true;
    for (const int c : kids)
      if (tree.node(c).kind != NodeKind::Sink) all_sinks = false;
    if (all_sinks) continue;  // leaf nets stay unbuffered (short edges)
    std::size_t invs = 0;
    for (const int c : kids) {
      const double len =
          geom::manhattan(tree.node(drv).pos, tree.node(c).pos);
      const std::size_t segs = static_cast<std::size_t>(
          std::ceil(len / opts_.max_stage_len_um));
      std::size_t need = segs > 0 ? segs - 1 : 0;
      if (need % 2 == 1) ++need;
      invs = std::max(invs, need);
    }
    if (invs == 0) continue;
    for (const int c : kids) {
      const Point a = tree.node(drv).pos;
      const Point b = tree.node(c).pos;
      int prev = drv;
      for (std::size_t j = 1; j <= invs; ++j) {
        const double t =
            static_cast<double>(j) / static_cast<double>(invs + 1);
        prev = tree.addBuffer(prev, geom::lerp(a, b, t), cell);
      }
      tree.reassignDriver(c, prev);
      result.inserted_buffers += invs;
    }
  }

  d.routing.rebuildAll(tree);

  // 4. Load-driven sizing, then 5. skew balancing toward the 0ps target.
  sizeBuffers(d);
  result.balanced_skew_ps = balance(d, result.sink_ids, bal_corners);

  std::string err;
  if (!tree.validate(&err))
    throw std::logic_error("CtsEngine produced invalid tree: " + err);
  return result;
}

void CtsEngine::sizeBuffers(Design& d) const {
  const std::size_t k = d.corners.front();
  ClockTree& tree = d.tree;

  // Bottom-up (deepest first) so child pin caps are final when the parent
  // is sized.
  std::vector<int> bufs = tree.buffers();
  std::sort(bufs.begin(), bufs.end(), [&](int a, int b) {
    const int la = tree.level(a), lb = tree.level(b);
    return la != lb ? la > lb : a < b;
  });
  for (const int id : bufs) {
    const route::SteinerTree* net = d.routing.net(id);
    if (net == nullptr) continue;
    double load = net->wirelength() * d.tech->wire(k).cap_ff_per_um;
    for (const int c : tree.node(id).children) {
      const ClockNode& cn = tree.node(c);
      load += (cn.kind == NodeKind::Sink)
                  ? d.tech->sinkCapFf(k)
                  : d.tech->cell(static_cast<std::size_t>(cn.cell))
                        .pin_cap_ff[k];
    }
    std::size_t pick = d.tech->numCells() - 1;
    for (std::size_t ci = 0; ci < d.tech->numCells(); ++ci) {
      if (load <= opts_.load_margin * d.tech->cell(ci).max_cap_ff) {
        pick = ci;
        break;
      }
    }
    tree.resize(id, static_cast<int>(pick));
  }
}

double CtsEngine::balance(Design& d, const std::vector<int>& sinks,
                          const std::vector<std::size_t>& bal_corners) const {
  // Sensitivities and sizing use the first balance corner; the *arrival*
  // driving the balancing decisions is either that corner's (MCSM) or the
  // normalized average across all of them (MCMM).
  const std::size_t k = bal_corners.front();
  ClockTree& tree = d.tree;
  const double wire_r = d.tech->wire(k).res_kohm_per_um;
  const double wire_c = d.tech->wire(k).cap_ff_per_um;

  constexpr double kMaxExtraPerEdge = 900.0;
  constexpr double kMaxStepPerIter = 150.0;
  constexpr double kDamping = 0.55;

  auto measureSkew = [&](const sta::CornerTiming& t) {
    double lo = std::numeric_limits<double>::infinity(), hi = -lo;
    for (const int s : sinks) {
      const double a = t.arrival[static_cast<std::size_t>(s)];
      lo = std::min(lo, a);
      hi = std::max(hi, a);
    }
    return hi - lo;
  };

  // Snapshot machinery: snaking that overshoots must never be kept.
  double best_skew = std::numeric_limits<double>::infinity();
  network::Routing best_routing = d.routing;
  std::vector<int> best_cells(tree.numNodes(), -1);
  auto snapshot = [&]() {
    best_routing = d.routing;
    for (std::size_t i = 0; i < tree.numNodes(); ++i)
      best_cells[i] = tree.isValid(static_cast<int>(i))
                          ? tree.node(static_cast<int>(i)).cell
                          : -1;
  };

  auto blendedTiming = [&]() {
    sta::CornerTiming t = timer_.analyze(tree, d.routing, bal_corners[0]);
    if (bal_corners.size() > 1) {
      // Normalize each corner's arrivals by its mean sink arrival, then
      // average, so slow corners do not dominate the blend.
      std::vector<double> blended(t.arrival.size(), 0.0);
      for (const std::size_t bk : bal_corners) {
        const sta::CornerTiming tk = timer_.analyze(tree, d.routing, bk);
        double mean = 0.0;
        for (const int s : sinks)
          mean += tk.arrival[static_cast<std::size_t>(s)];
        mean /= std::max<double>(1.0, static_cast<double>(sinks.size()));
        const double inv = mean > 1e-9 ? 1.0 / mean : 1.0;
        for (std::size_t i = 0; i < blended.size(); ++i)
          blended[i] += tk.arrival[i] * inv;
      }
      // Rescale to the first corner's latency range so the ps-valued
      // deficits below stay physical.
      double mean0 = 0.0;
      for (const int s : sinks)
        mean0 += t.arrival[static_cast<std::size_t>(s)];
      mean0 /= std::max<double>(1.0, static_cast<double>(sinks.size()));
      for (std::size_t i = 0; i < blended.size(); ++i)
        t.arrival[i] = blended[i] * mean0 /
                       static_cast<double>(bal_corners.size());
    }
    return t;
  };

  for (std::size_t iter = 0; iter < opts_.balance_iterations; ++iter) {
    sizeBuffers(d);  // re-fit drive strengths to the grown wire loads
    const sta::CornerTiming t = blendedTiming();
    const double skew = measureSkew(t);
    if (skew < best_skew) {
      best_skew = skew;
      snapshot();
    }
    if (skew <= opts_.skew_target_ps + 2.0) break;

    // Subtree max latency per node.
    std::vector<double> max_lat(tree.numNodes(),
                                -std::numeric_limits<double>::infinity());
    for (const int s : sinks) {
      const double a = t.arrival[static_cast<std::size_t>(s)];
      for (int cur = s; cur >= 0; cur = tree.node(cur).parent) {
        if (a <= max_lat[static_cast<std::size_t>(cur)]) break;
        max_lat[static_cast<std::size_t>(cur)] = a;
      }
    }

    // Snake wire into the faster child branches, damped and bounded.
    for (std::size_t i = 0; i < tree.numNodes(); ++i) {
      const int drv = static_cast<int>(i);
      if (!tree.isValid(drv)) continue;
      const ClockNode& dn = tree.node(drv);
      if (dn.children.size() < 2) continue;
      double target = -std::numeric_limits<double>::infinity();
      for (const int c : dn.children)
        target = std::max(target, max_lat[static_cast<std::size_t>(c)]);
      const double reff =
          (dn.kind == NodeKind::Buffer)
              ? effectiveDriveRes(
                    d.tech->cell(static_cast<std::size_t>(dn.cell)), k)
              : 0.2;
      // Load headroom: never snake the driver past ~85% of its max cap.
      double cap_headroom = std::numeric_limits<double>::infinity();
      if (dn.kind == NodeKind::Buffer) {
        const double maxc =
            d.tech->cell(static_cast<std::size_t>(dn.cell)).max_cap_ff;
        cap_headroom = std::max(
            0.0, 0.85 * maxc - t.driver_load[static_cast<std::size_t>(drv)]);
      }
      for (std::size_t ci = 0; ci < dn.children.size(); ++ci) {
        const int c = dn.children[ci];
        const double deficit = target - max_lat[static_cast<std::size_t>(c)];
        if (deficit < 2.0) continue;
        const ClockNode& cn = tree.node(c);
        const double cpin =
            (cn.kind == NodeKind::Sink)
                ? d.tech->sinkCapFf(k)
                : d.tech->cell(static_cast<std::size_t>(cn.cell))
                      .pin_cap_ff[k];
        const double cur_extra = d.routing.extraOf(drv, ci);
        if (cur_extra >= kMaxExtraPerEdge) continue;
        // d(delay)/d(extra) of a snaked edge: the snake's own RC (quadratic
        // in length, so the local slope grows with what is already there)
        // plus the driver resistance seeing the added cap.
        const double sens = wire_r * wire_c * cur_extra +
                            wire_r * (cpin + wire_c * cur_extra / 2.0) +
                            reff * wire_c + 1e-4;
        double extra = std::min(kDamping * deficit / sens, kMaxStepPerIter);
        extra = std::min(extra, kMaxExtraPerEdge - cur_extra);
        if (cap_headroom < std::numeric_limits<double>::infinity()) {
          extra = std::min(extra, cap_headroom / wire_c);
          cap_headroom -= extra * wire_c;
        }
        if (extra > 1.0) d.routing.addExtra(drv, ci, extra);
      }
    }
  }

  // Final check, then restore the best configuration seen.
  {
    sizeBuffers(d);
    const sta::CornerTiming t = blendedTiming();
    const double skew = measureSkew(t);
    if (skew < best_skew) {
      best_skew = skew;
      snapshot();
    }
  }
  d.routing = std::move(best_routing);
  for (std::size_t i = 0; i < tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (best_cells[i] >= 0 && tree.isValid(id) &&
        tree.node(id).kind == NodeKind::Buffer &&
        tree.node(id).cell != best_cells[i])
      tree.resize(id, best_cells[i]);
  }
  return best_skew;
}

CtsResult CtsEngine::synthesizeBestScenario(
    Design& d, const std::vector<Point>& sink_pos,
    const std::function<std::vector<network::SinkPair>(
        const std::vector<int>&)>& make_pairs) const {
  if (d.corners.empty())
    throw std::invalid_argument("synthesizeBestScenario: no active corners");

  // Scenarios: one MCSM balance per active corner, plus the MCMM blend.
  std::vector<std::vector<std::size_t>> scenarios;
  for (const std::size_t k : d.corners) scenarios.push_back({k});
  scenarios.push_back(d.corners);

  double best_score = std::numeric_limits<double>::infinity();
  Design best = d;
  CtsResult best_result;
  std::size_t best_tag = 0;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    Design candidate = d;  // must still be source-only
    CtsResult r = synthesizeWithScenario(candidate, sink_pos, scenarios[si]);
    candidate.pairs = make_pairs(r.sink_ids);
    const double score = sta::sumNormalizedSkewVariation(candidate, timer_);
    if (score < best_score) {
      best_score = score;
      best = std::move(candidate);
      best_result = std::move(r);
      best_tag = (scenarios[si].size() == 1) ? scenarios[si][0]
                                             : std::numeric_limits<std::size_t>::max();
    }
  }
  d = std::move(best);
  best_result.chosen_scenario = best_tag;
  return best_result;
}

}  // namespace skewopt::cts
