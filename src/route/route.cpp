#include "route/route.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace skewopt::route {

using geom::Point;

double SteinerTree::wirelength() const {
  double wl = 0.0;
  for (std::size_t n = 1; n < nodes.size(); ++n) wl += edgeLength(n);
  return wl;
}

double SteinerTree::pathLength(std::size_t pin) const {
  if (pin >= pin_node.size())
    throw std::out_of_range("SteinerTree::pathLength: bad pin");
  double len = 0.0;
  for (int n = static_cast<int>(pin_node[pin]); parent[n] >= 0;
       n = parent[n]) {
    len += edgeLength(static_cast<std::size_t>(n));
  }
  return len;
}

namespace {

// Closest point (L1) on the axis-aligned segment [p, q] to point `t`.
Point closestOnSegment(const Point& p, const Point& q, const Point& t) {
  return {std::clamp(t.x, std::min(p.x, q.x), std::max(p.x, q.x)),
          std::clamp(t.y, std::min(p.y, q.y), std::max(p.y, q.y))};
}

struct Attach {
  double dist = std::numeric_limits<double>::infinity();
  std::size_t edge_child = 0;  // edge identified by its child node
  Point point;
  bool at_node = false;
  std::size_t node = 0;
};

// Best attachment of `t` onto the current tree: either an existing node or
// an interior point of an axis-aligned edge.
Attach findAttach(const SteinerTree& tree, const Point& t) {
  Attach best;
  for (std::size_t n = 0; n < tree.nodes.size(); ++n) {
    const double d = geom::manhattan(tree.nodes[n], t);
    if (d < best.dist) {
      best = {d, 0, tree.nodes[n], true, n};
    }
  }
  for (std::size_t n = 1; n < tree.nodes.size(); ++n) {
    const Point& a = tree.nodes[n];
    const Point& b = tree.nodes[static_cast<std::size_t>(tree.parent[n])];
    const Point c = closestOnSegment(a, b, t);
    const double d = geom::manhattan(c, t);
    if (d + 1e-9 < best.dist) {
      best = {d, n, c, false, 0};
    }
  }
  return best;
}

std::size_t addTreeNode(SteinerTree& tree, const Point& p, int parent) {
  tree.nodes.push_back(p);
  tree.parent.push_back(parent);
  tree.extra.push_back(0.0);
  return tree.nodes.size() - 1;
}

// Connects point t to the tree at the given attachment, creating a Steiner
// split node and an L-corner as needed. Returns the node index of t.
std::size_t connect(SteinerTree& tree, const Point& t, const Attach& at) {
  std::size_t anchor;
  if (at.at_node) {
    anchor = at.node;
  } else {
    const std::size_t child = at.edge_child;
    const Point& cp = tree.nodes[child];
    if (at.point == cp) {
      anchor = child;
    } else if (at.point ==
               tree.nodes[static_cast<std::size_t>(tree.parent[child])]) {
      anchor = static_cast<std::size_t>(tree.parent[child]);
    } else {
      // Split the edge: child -> split -> old parent. Any jog extra on the
      // edge stays on the lower half (arbitrary but consistent).
      anchor = addTreeNode(tree, at.point, tree.parent[child]);
      tree.parent[child] = static_cast<int>(anchor);
    }
  }
  const Point& ap = tree.nodes[anchor];
  if (ap.x != t.x && ap.y != t.y) {
    const Point corner{t.x, ap.y};
    const std::size_t c = addTreeNode(tree, corner, static_cast<int>(anchor));
    return addTreeNode(tree, t, static_cast<int>(c));
  }
  return addTreeNode(tree, t, static_cast<int>(anchor));
}

SteinerTree greedySteinerOrdered(const Point& driver,
                                 const std::vector<Point>& pins,
                                 const std::vector<std::size_t>& order) {
  SteinerTree tree;
  addTreeNode(tree, driver, -1);
  tree.pin_node.assign(pins.size(), 0);
  for (const std::size_t i : order) {
    const Attach at = findAttach(tree, pins[i]);
    tree.pin_node[i] = connect(tree, pins[i], at);
  }
  return tree;
}

std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hashPoint(const Point& p, std::uint64_t h) {
  h = mix(h ^ std::bit_cast<std::uint64_t>(p.x));
  h = mix(h ^ std::bit_cast<std::uint64_t>(p.y));
  return h;
}

}  // namespace

SteinerTree greedySteiner(const Point& driver, const std::vector<Point>& pins) {
  // Nearest-unrouted-first insertion order (recomputed against the driver
  // only, which keeps the heuristic deterministic and cheap).
  std::vector<std::size_t> order(pins.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = geom::manhattan(driver, pins[a]);
    const double db = geom::manhattan(driver, pins[b]);
    return da != db ? da < db : a < b;
  });
  return greedySteinerOrdered(driver, pins, order);
}

SteinerTree singleTrunk(const Point& driver, const std::vector<Point>& pins) {
  SteinerTree tree;
  addTreeNode(tree, driver, -1);
  tree.pin_node.assign(pins.size(), 0);
  if (pins.empty()) return tree;

  std::vector<double> xs;
  xs.reserve(pins.size() + 1);
  for (const Point& p : pins) xs.push_back(p.x);
  xs.push_back(driver.x);
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  const double xt = xs[xs.size() / 2];

  // Trunk attachment y-coordinates, sorted; the driver's attachment anchors
  // the trunk, and trunk segments chain away from it in both directions.
  struct Tap {
    double y;
    int pin;  // -1 for the driver tap
  };
  std::vector<Tap> taps;
  taps.push_back({driver.y, -1});
  for (std::size_t i = 0; i < pins.size(); ++i)
    taps.push_back({pins[i].y, static_cast<int>(i)});
  std::sort(taps.begin(), taps.end(), [](const Tap& a, const Tap& b) {
    return a.y != b.y ? a.y < b.y : a.pin < b.pin;
  });

  // Create trunk nodes (deduplicated by y) in sorted order.
  std::vector<std::size_t> trunk_node;
  std::vector<double> trunk_y;
  std::size_t driver_tap = 0;
  std::vector<std::size_t> pin_tap(pins.size());
  for (const Tap& t : taps) {
    if (trunk_y.empty() || trunk_y.back() != t.y) {
      trunk_y.push_back(t.y);
      trunk_node.push_back(addTreeNode(tree, {xt, t.y}, -2));  // parent later
    }
    if (t.pin < 0)
      driver_tap = trunk_node.size() - 1;
    else
      pin_tap[static_cast<std::size_t>(t.pin)] = trunk_node.size() - 1;
  }

  // Chain trunk nodes toward the driver tap; the driver tap hangs off the
  // driver pin through its horizontal stub.
  tree.parent[trunk_node[driver_tap]] = 0;
  for (std::size_t i = driver_tap; i-- > 0;)
    tree.parent[trunk_node[i]] = static_cast<int>(trunk_node[i + 1]);
  for (std::size_t i = driver_tap + 1; i < trunk_node.size(); ++i)
    tree.parent[trunk_node[i]] = static_cast<int>(trunk_node[i - 1]);

  // Horizontal stubs from trunk to each pin.
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].x == xt && pins[i].y == trunk_y[pin_tap[i]]) {
      tree.pin_node[i] = trunk_node[pin_tap[i]];
    } else {
      tree.pin_node[i] = addTreeNode(
          tree, pins[i], static_cast<int>(trunk_node[pin_tap[i]]));
    }
  }
  return tree;
}

SteinerTree ecoRoute(const Point& driver, const std::vector<Point>& pins,
                     double jog_factor) {
  // Deterministic placement-derived hash drives both the insertion order
  // perturbation and the per-edge jogs.
  std::uint64_t h = hashPoint(driver, 0x9E3779B97F4A7C15ULL);
  for (const Point& p : pins) h = hashPoint(p, h);

  std::vector<std::size_t> order(pins.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Order by a hash-perturbed distance so the golden route differs from the
  // predictor's nearest-first estimate on ties and near-ties.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = geom::manhattan(driver, pins[a]) *
                      (1.0 + 0.15 * static_cast<double>(mix(h ^ a) & 0xFF) / 255.0);
    const double db = geom::manhattan(driver, pins[b]) *
                      (1.0 + 0.15 * static_cast<double>(mix(h ^ b) & 0xFF) / 255.0);
    return da != db ? da < db : a < b;
  });

  SteinerTree tree = greedySteinerOrdered(driver, pins, order);
  if (jog_factor <= 0.0) return tree;  // jog_factor 0: ideal router
  // Detours have a *systematic* congestion-like component that grows with
  // the net's pin count (real routers detour more in denser nets) plus a
  // random per-edge jog. The systematic part is what the paper's ML model
  // learns through its fanout/bounding-box features; the random part is
  // irreducible ECO noise.
  const double fanout = static_cast<double>(pins.size());
  geom::BBox box;
  box.add(driver);
  for (const Point& p : pins) box.add(p);
  // Elongated and large nets cross more congested area and detour more;
  // both the aspect ratio and the area of the pin bounding box modulate
  // the systematic detour (the paper's ML features include exactly these
  // quantities, which is how its model learns the router's behavior).
  const double elongation = 1.0 + 0.8 * (1.0 - box.rect().aspect());
  const double spread =
      1.0 + 0.25 * std::log1p(box.rect().area() / 4000.0);
  const double systematic =
      0.12 * fanout / (fanout + 5.0) * elongation * spread;
  for (std::size_t n = 1; n < tree.nodes.size(); ++n) {
    const double len =
        geom::manhattan(tree.nodes[n],
                        tree.nodes[static_cast<std::size_t>(tree.parent[n])]);
    const double u = static_cast<double>(mix(h ^ (n * 0x9E37ULL)) & 0xFFFF) /
                     65535.0;
    tree.extra[n] = (systematic + jog_factor * u) * len;
  }
  return tree;
}

std::vector<Point> uShapePath(const Point& a, const Point& b,
                              double total_len) {
  const double direct = geom::manhattan(a, b);
  std::vector<Point> path;
  path.push_back(a);
  const double extra = total_len - direct;
  if (extra <= 1e-9) {
    if (a.x != b.x && a.y != b.y) path.push_back({b.x, a.y});
    path.push_back(b);
    return path;
  }
  // Detour by extra/2 perpendicular to the dominant travel axis, away from
  // the destination, then an L to the destination.
  const double d = extra / 2.0;
  const bool x_dominant = std::abs(b.x - a.x) >= std::abs(b.y - a.y);
  if (x_dominant) {
    const double s = (b.y >= a.y) ? -1.0 : 1.0;
    path.push_back({a.x, a.y + s * d});
    path.push_back({b.x, a.y + s * d});
  } else {
    const double s = (b.x >= a.x) ? -1.0 : 1.0;
    path.push_back({a.x + s * d, a.y});
    path.push_back({a.x + s * d, b.y});
  }
  if (path.back().x != b.x && path.back().y != b.y)
    path.push_back({b.x, path.back().y});
  path.push_back(b);
  return path;
}

double polylineLength(const std::vector<Point>& path) {
  double len = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i)
    len += geom::manhattan(path[i - 1], path[i]);
  return len;
}

Point pointAlongPath(const std::vector<Point>& path, double dist) {
  if (path.empty()) return {};
  if (dist <= 0.0) return path.front();
  for (std::size_t i = 1; i < path.size(); ++i) {
    const double seg = geom::manhattan(path[i - 1], path[i]);
    if (dist <= seg) {
      const double t = seg > 0.0 ? dist / seg : 0.0;
      return geom::lerp(path[i - 1], path[i], t);
    }
    dist -= seg;
  }
  return path.back();
}

}  // namespace skewopt::route
