// Rectilinear routing topologies for clock nets.
//
// Three route generators, mirroring the paper's usage:
//  * greedySteiner()  — a FLUTE-class rectilinear Steiner heuristic (greedy
//                       point-to-segment attachment with trunk sharing). The
//                       delta-latency predictor calls this its "FLUTE tree".
//  * singleTrunk()    — the classical single-trunk Steiner tree (median
//                       trunk, per-pin stubs), the predictor's second
//                       topology estimate.
//  * ecoRoute()       — the "golden" router standing in for the commercial
//                       P&R tool's ECO routing. It is the greedy Steiner
//                       heuristic plus deterministic, congestion-like jog
//                       detours, so predicted and actual routes genuinely
//                       disagree — the gap the paper's ML model learns.
//
// Also provides U-shaped detour polylines used by the LP-guided ECO when an
// arc needs more wirelength than the straight run (paper Sec. 4.1).
#pragma once

#include <cstddef>
#include <vector>

#include "geom/geom.h"

namespace skewopt::route {

/// A routed tree. Node 0 is the driver pin. Every other node connects to
/// its parent through a rectilinear edge; `extra` adds snaking wirelength
/// (jogs/detours) on top of the Manhattan span of the edge.
struct SteinerTree {
  std::vector<geom::Point> nodes;
  std::vector<int> parent;       ///< parent[0] == -1
  std::vector<double> extra;     ///< extra routed length per edge (um)
  std::vector<std::size_t> pin_node;  ///< sink pin i -> node index

  std::size_t size() const { return nodes.size(); }

  double edgeLength(std::size_t n) const {
    return parent[n] < 0
               ? 0.0
               : geom::manhattan(nodes[n],
                                 nodes[static_cast<std::size_t>(parent[n])]) +
                     extra[n];
  }

  /// Total routed wirelength in um.
  double wirelength() const;

  /// Routed length from the driver to sink pin `i` along the tree.
  double pathLength(std::size_t pin) const;
};

/// Greedy rectilinear Steiner heuristic: pins attach, nearest-first, to the
/// closest point of any already-routed segment through an L-shaped
/// connection. Produces trunk-sharing topologies within a few percent of
/// RSMT length for clock-net fanouts.
SteinerTree greedySteiner(const geom::Point& driver,
                          const std::vector<geom::Point>& pins);

/// Single-trunk Steiner tree: a vertical trunk at the median pin x spanning
/// the pins' y-range; each pin (and the driver) connects with a horizontal
/// stub.
SteinerTree singleTrunk(const geom::Point& driver,
                        const std::vector<geom::Point>& pins);

/// Golden ECO route: greedy Steiner with deterministic pseudo-random jogs
/// (up to `jog_factor` fractional extra length per edge) derived from the
/// pin coordinates, standing in for real-router detours. The same placement
/// always yields the same route.
SteinerTree ecoRoute(const geom::Point& driver,
                     const std::vector<geom::Point>& pins,
                     double jog_factor = 0.08);

/// A rectilinear polyline from `a` to `b` whose total length is
/// max(manhattan(a,b), total_len), realized as a "U" detour perpendicular
/// to the dominant direction when extra length is needed.
std::vector<geom::Point> uShapePath(const geom::Point& a, const geom::Point& b,
                                    double total_len);

/// Total L1 length of a polyline.
double polylineLength(const std::vector<geom::Point>& path);

/// Point at arc-length `dist` along a polyline (clamped to its ends).
geom::Point pointAlongPath(const std::vector<geom::Point>& path, double dist);

}  // namespace skewopt::route
