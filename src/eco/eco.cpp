#include "eco/eco.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace skewopt::eco {

using geom::Point;
using network::Arc;
using network::ClockTree;
using network::Design;

Point Legalizer::snap(const Point& p) const {
  Point s{geom::snap(p.x, tech_->siteWidthUm()),
          geom::snap(p.y, tech_->rowHeightUm())};
  if (!floorplan_->empty() && !floorplan_->contains(s)) {
    s = floorplan_->clamp(s);
    s.x = geom::snap(s.x, tech_->siteWidthUm());
    s.y = geom::snap(s.y, tech_->rowHeightUm());
  }
  return s;
}

double Legalizer::legalize(Design& d, const std::vector<int>& nodes) const {
  const double site = tech_->siteWidthUm();
  const double row = tech_->rowHeightUm();

  // Occupancy of (row, site-start) cells by every other live buffer. A
  // sorted vector, not a std::set: legalize runs on every trial move, and
  // one allocation beats a red-black node per buffer.
  auto key = [&](const Point& p) {
    return std::pair<long, long>(std::lround(p.y / row),
                                 std::lround(p.x / site));
  };
  std::vector<std::pair<long, long>> occupied;
  auto isMoving = [&](int id) {
    return std::find(nodes.begin(), nodes.end(), id) != nodes.end();
  };
  for (std::size_t i = 0; i < d.tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (!d.tree.isValid(id) || isMoving(id)) continue;
    if (d.tree.node(id).kind == network::NodeKind::Buffer)
      occupied.push_back(key(d.tree.node(id).pos));
  }
  std::sort(occupied.begin(), occupied.end());
  auto isOccupied = [&](const std::pair<long, long>& k) {
    return std::binary_search(occupied.begin(), occupied.end(), k);
  };
  auto markOccupied = [&](const std::pair<long, long>& k) {
    occupied.insert(std::upper_bound(occupied.begin(), occupied.end(), k), k);
  };

  double max_disp = 0.0;
  for (const int id : nodes) {
    const Point orig = d.tree.node(id).pos;
    Point p = snap(orig);
    // Deterministic spiral probe in site/row offsets.
    bool placed = false;
    for (int radius = 0; radius <= 24 && !placed; ++radius) {
      for (int dy = -radius; dy <= radius && !placed; ++dy) {
        for (int dx = -radius; dx <= radius && !placed; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
          Point cand{p.x + dx * site * 3.0, p.y + dy * row};
          if (!floorplan_->empty() && !floorplan_->contains(cand)) continue;
          if (isOccupied(key(cand))) continue;
          markOccupied(key(cand));
          d.tree.moveNode(id, cand);
          max_disp = std::max(max_disp, geom::manhattan(orig, cand));
          placed = true;
        }
      }
    }
    if (!placed) {  // fall back: keep the snapped point even if crowded
      markOccupied(key(p));
      d.tree.moveNode(id, p);
      max_disp = std::max(max_disp, geom::manhattan(orig, p));
    }
  }
  return max_disp;
}

ArcSolution EcoEngine::selectSolution(
    const std::vector<std::size_t>& corners, const std::vector<double>& d_lp,
    double arc_len_um, const std::vector<double>& slew_in,
    const std::vector<double>& last_load_ff) const {
  if (corners.empty() || d_lp.size() != corners.size() ||
      slew_in.size() != corners.size() ||
      last_load_ff.size() != corners.size())
    throw std::invalid_argument("selectSolution: per-corner size mismatch");

  const std::vector<double>& wls = lut_->wirelengths();
  ArcSolution best;
  best.err = std::numeric_limits<double>::infinity();

  // c0 (the nominal corner) is by convention the first active corner.
  std::vector<double> est(corners.size());
  for (std::size_t p = 0; p < lut_->numSizes(); ++p) {
    for (std::size_t qi = 0; qi < wls.size(); ++qi) {
      if (!lut_->comboLegal(p, qi)) continue;  // max-cap legality
      const double q = wls[qi];
      // The last pair additionally drives the arc's terminating load.
      bool last_ok = true;
      for (std::size_t ki = 0; ki < corners.size() && last_ok; ++ki) {
        const double wc = q * tech_->wire(corners[ki]).cap_ff_per_um;
        if (wc + last_load_ff[ki] > 0.9 * tech_->cell(p).max_cap_ff)
          last_ok = false;
      }
      if (!last_ok) continue;
      const double du0 = lut_->uniformDelay(p, qi, corners.front());
      const std::size_t uest = static_cast<std::size_t>(
          std::max(1.0, std::round(d_lp.front() / std::max(du0, 1e-9))));
      const std::size_t lo = uest > 2 ? uest - 2 : 1;
      for (std::size_t u = lo; u <= uest + 2; ++u) {
        // Geometric feasibility: the chain must cover the arc span.
        if ((2.0 * static_cast<double>(u) + 1.0) * q < arc_len_um - 1e-6)
          continue;
        double err = 0.0;
        for (std::size_t ki = 0; ki < corners.size(); ++ki)
          est[ki] = lut_->arcDelay(p, qi, u, corners[ki], slew_in[ki],
                                   last_load_ff[ki]);
        for (std::size_t ki = 0; ki < corners.size(); ++ki)
          err += std::abs(est[ki] - d_lp[ki]);
        for (std::size_t ki = 0; ki < corners.size(); ++ki)
          for (std::size_t kj = ki + 1; kj < corners.size(); ++kj)
            err += std::abs((est[ki] - est[kj]) - (d_lp[ki] - d_lp[kj]));
        err += pair_penalty_ * static_cast<double>(u);
        err += overshoot_weight_ * std::max(0.0, est.front() - d_lp.front());
        if (err < best.err) {
          best.valid = true;
          best.p = p;
          best.q_idx = qi;
          best.u = u;
          best.err = err;
          best.est_delay = est;
        }
      }
    }
  }
  return best;
}

std::vector<int> EcoEngine::rebuildArc(Design& d, const Arc& arc,
                                       const ArcSolution& sol) const {
  if (!sol.valid) throw std::invalid_argument("rebuildArc: invalid solution");
  ClockTree& tree = d.tree;

  // 1. Strip the arc's current inverter pairs.
  for (const int b : arc.interior) tree.removeInteriorBuffer(b);
  for (const int b : arc.interior) d.routing.eraseNet(b);

  // 2. Uniform re-insertion along the detour path: 2u inverters spaced q,
  //    total routed span (2u+1)q, snaked as a "U" when that exceeds the
  //    direct Manhattan run.
  const double q = lut_->wirelengths()[sol.q_idx];
  const double span = (2.0 * static_cast<double>(sol.u) + 1.0) * q;
  const Point a = tree.node(arc.src).pos;
  const Point b = tree.node(arc.dst).pos;
  const std::vector<Point> path = route::uShapePath(a, b, span);

  std::vector<int> inserted;
  int prev = arc.src;
  for (std::size_t i = 1; i <= 2 * sol.u; ++i) {
    const Point pos =
        route::pointAlongPath(path, static_cast<double>(i) * q);
    prev = tree.addBuffer(prev, pos, static_cast<int>(sol.p));
    inserted.push_back(prev);
  }
  tree.reassignDriver(arc.dst, prev);

  // 3. Legalize the new cells, then ECO-reroute the touched nets.
  Legalizer legal(*tech_, d.floorplan);
  legal.legalize(d, inserted);
  d.routing.rebuildNet(tree, arc.src);
  for (const int bid : inserted) d.routing.rebuildNet(tree, bid);

  // 4. Force the designed inter-inverter spacing: pad each chain hop up to
  //    length q with snaking (the router's own jogs may already exceed it —
  //    that residual is exactly the paper's ECO discrepancy).
  auto padHop = [&](int driver, int child) {
    const route::SteinerTree* net = d.routing.net(driver);
    if (net == nullptr) return;
    const auto& kids = tree.node(driver).children;
    for (std::size_t pi = 0; pi < kids.size(); ++pi) {
      if (kids[pi] != child) continue;
      const double cur = net->pathLength(pi);
      if (cur < q - 1e-6) d.routing.addExtra(driver, pi, q - cur);
      break;
    }
  };
  int hop_prev = arc.src;
  for (const int bid : inserted) {
    padHop(hop_prev, bid);
    hop_prev = bid;
  }
  padHop(hop_prev, arc.dst);
  return inserted;
}

}  // namespace skewopt::eco
