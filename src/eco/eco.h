// ECO implementation layer (paper Sec. 4.1, Algorithm 1).
//
// The global LP hands each arc a desired delay per corner; this module
// realizes it physically:
//   * selectSolution() — Algorithm 1: enumerate (gate size p, inter-inverter
//     wirelength q, pair count u in [u_est-2, u_est+2]) against the stage
//     LUTs and pick the combination minimizing the multi-corner error
//     (absolute per-corner error plus corner-pair delta error);
//   * rebuildArc()     — strip the arc's inverter pairs, re-insert the
//     chosen chain uniformly spaced along a (possibly U-shaped) detour
//     path, legalize, and ECO-reroute;
//   * Legalizer        — site/row snapping with deterministic overlap
//     resolution, the source of the placement noise the paper says makes
//     LP delays and realized delays differ.
#pragma once

#include <cstddef>
#include <vector>

#include "eco/stage_lut.h"
#include "network/design.h"

namespace skewopt::eco {

/// The (p, q, u) choice of Algorithm 1 for one arc.
struct ArcSolution {
  bool valid = false;
  std::size_t p = 0;       ///< library cell (gate size)
  std::size_t q_idx = 0;   ///< index into StageDelayLut::wirelengths()
  std::size_t u = 0;       ///< number of inverter pairs
  double err = 0.0;        ///< Algorithm-1 error of the chosen solution
  std::vector<double> est_delay;  ///< per active corner, ps
};

class Legalizer {
 public:
  Legalizer(const tech::TechModel& tech, const geom::Region& floorplan)
      : tech_(&tech), floorplan_(&floorplan) {}

  /// Snaps a point to the site/row grid and clamps it into the floorplan.
  geom::Point snap(const geom::Point& p) const;

  /// Places the given buffers on free sites (deterministic spiral probing
  /// around their current locations, avoiding every other live buffer).
  /// Returns the maximum displacement applied (um). Does NOT reroute.
  double legalize(network::Design& d, const std::vector<int>& nodes) const;

 private:
  const tech::TechModel* tech_;
  const geom::Region* floorplan_;
};

class EcoEngine {
 public:
  /// `pair_count_penalty_ps` is added to the Algorithm-1 error per inverter
  /// pair — a tie-break that steers near-equal solutions toward fewer cells
  /// (keeps the Table 5 cell/power overhead negligible, as the paper
  /// reports).
  /// `overshoot_weight` additionally penalizes exceeding the nominal-corner
  /// target: wire snaking can trim an undershoot after the fact, but an
  /// overshoot is unrecoverable, so the selection is biased to undershoot.
  EcoEngine(const tech::TechModel& tech, const StageDelayLut& lut,
            double pair_count_penalty_ps = 1.5, double overshoot_weight = 2.0)
      : tech_(&tech), lut_(&lut), pair_penalty_(pair_count_penalty_ps),
        overshoot_weight_(overshoot_weight) {}

  /// Algorithm 1: chooses (p, q, u) for an arc of Manhattan length
  /// `arc_len_um`, given the LP's desired delay per active corner `d_lp`,
  /// the input slew at the arc source and the load terminating the arc
  /// (both per active corner). Solutions that cannot cover the arc's
  /// geometric span ((2u+1)q < len) are rejected.
  ArcSolution selectSolution(const std::vector<std::size_t>& corners,
                             const std::vector<double>& d_lp,
                             double arc_len_um,
                             const std::vector<double>& slew_in,
                             const std::vector<double>& last_load_ff) const;

  /// Rebuilds one arc per the solution: removes its interior inverter
  /// pairs, inserts the new chain uniformly along a U-shape detour path,
  /// legalizes the new cells and rebuilds the affected nets with forced
  /// inter-inverter spacing. Returns the ids of the inserted buffers.
  std::vector<int> rebuildArc(network::Design& d, const network::Arc& arc,
                              const ArcSolution& sol) const;

  const StageDelayLut& lut() const { return *lut_; }

 private:
  const tech::TechModel* tech_;
  const StageDelayLut* lut_;
  double pair_penalty_;
  double overshoot_weight_;
};

}  // namespace skewopt::eco
