#include "eco/stage_lut.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rc/rc.h"

namespace skewopt::eco {

double RatioBound::eval(double u) const {
  const double x = std::clamp(u, u_lo, u_hi);
  return (a * x + b) * x + c;
}

StageDelayLut::StageDelayLut(const tech::TechModel& tech, LutKnobs knobs)
    : tech_(&tech), knobs_(knobs) {
  for (double q = knobs_.wl_min_um; q <= knobs_.wl_max_um + 1e-9;
       q += knobs_.wl_step_um)
    wls_.push_back(q);
  characterize();
  fitBounds();
}

std::size_t StageDelayLut::qIndex(double q_um) const {
  const double t = (q_um - knobs_.wl_min_um) / knobs_.wl_step_um;
  const long i = std::lround(t);
  if (i < 0 || static_cast<std::size_t>(i) >= wls_.size())
    throw std::out_of_range("StageDelayLut: wirelength off grid");
  return static_cast<std::size_t>(i);
}

double StageDelayLut::pairDelayOnce(std::size_t p, double q_um,
                                    std::size_t corner, double slew_in,
                                    double next_pin_load_ff,
                                    double* out_slew) const {
  const tech::Cell& cell = tech_->cell(p);
  const tech::WireParams& w = tech_->wire(corner);
  const double wr = q_um * w.res_kohm_per_um;
  const double wc = q_um * w.cap_ff_per_um;
  const double pin = cell.pin_cap_ff[corner];

  // First inverter drives wire(q) + second inverter's pin.
  const double load1 = wc + pin;
  const double d1 = cell.delay[corner].lookup(slew_in, load1);
  const double s1 = cell.out_slew[corner].lookup(slew_in, load1);
  const double wire1 = wr * (wc / 2.0 + pin);
  const double s1w = rc::periSlew(s1, rc::wireSlewFromElmore(wire1));

  // Second inverter drives wire(q) + the trailing load.
  const double load2 = wc + next_pin_load_ff;
  const double d2 = cell.delay[corner].lookup(s1w, load2);
  const double s2 = cell.out_slew[corner].lookup(s1w, load2);
  const double wire2 = wr * (wc / 2.0 + next_pin_load_ff);
  if (out_slew != nullptr)
    *out_slew = rc::periSlew(s2, rc::wireSlewFromElmore(wire2));
  return d1 + wire1 + d2 + wire2;
}

void StageDelayLut::characterize() {
  const std::size_t np = tech_->numCells();
  const std::size_t nq = wls_.size();
  const std::size_t nk = tech_->numCorners();
  uni_delay_.assign(np, std::vector<std::vector<double>>(
                            nq, std::vector<double>(nk, 0.0)));
  uni_slew_ = uni_delay_;
  for (std::size_t p = 0; p < np; ++p) {
    const double pin = 0.0;  // next pair's pin cap handled inside pairDelay
    (void)pin;
    for (std::size_t qi = 0; qi < nq; ++qi) {
      for (std::size_t k = 0; k < nk; ++k) {
        // Fixpoint of the repeating chain's slew.
        double slew = 30.0;
        double delay = 0.0;
        const double next_pin = tech_->cell(p).pin_cap_ff[k];
        for (int it = 0; it < 12; ++it) {
          double out = 0.0;
          delay = pairDelayOnce(p, wls_[qi], k, slew, next_pin, &out);
          if (std::abs(out - slew) < 0.05) {
            slew = out;
            break;
          }
          slew = out;
        }
        uni_slew_[p][qi][k] = slew;
        uni_delay_[p][qi][k] = delay;
      }
    }
  }
}

double StageDelayLut::uniformDelay(std::size_t p, std::size_t q_idx,
                                   std::size_t corner) const {
  return uni_delay_[p][q_idx][corner];
}

double StageDelayLut::uniformSlew(std::size_t p, std::size_t q_idx,
                                  std::size_t corner) const {
  return uni_slew_[p][q_idx][corner];
}

double StageDelayLut::detailDelay(std::size_t p, double q_um,
                                  std::size_t corner, double slew_in,
                                  double last_load_ff) const {
  return pairDelayOnce(p, q_um, corner, slew_in, last_load_ff, nullptr);
}

double StageDelayLut::detailOutSlew(std::size_t p, double q_um,
                                    std::size_t corner, double slew_in,
                                    double last_load_ff) const {
  double out = 0.0;
  pairDelayOnce(p, q_um, corner, slew_in, last_load_ff, &out);
  return out;
}

double StageDelayLut::arcDelay(std::size_t p, std::size_t q_idx,
                               std::size_t u, std::size_t corner,
                               double slew_in, double last_load_ff) const {
  if (u == 0) throw std::invalid_argument("arcDelay: u must be >= 1");
  const double q = wls_[q_idx];
  if (u == 1) return detailDelay(p, q, corner, slew_in, last_load_ff);
  const double pin = tech_->cell(p).pin_cap_ff[corner];
  double out = 0.0;
  const double first = pairDelayOnce(p, q, corner, slew_in, pin, &out);
  const double middle =
      static_cast<double>(u - 2) * uni_delay_[p][q_idx][corner];
  const double last =
      detailDelay(p, q, corner, uni_slew_[p][q_idx][corner], last_load_ff);
  return first + middle + last;
}

double StageDelayLut::minAchievableDelay(double arc_len_um,
                                         std::size_t corner) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < numSizes(); ++p) {
    for (std::size_t qi = 0; qi < wls_.size(); ++qi) {
      if (!comboLegal(p, qi)) continue;
      const double q = wls_[qi];
      const double raw = (arc_len_um / q - 1.0) / 2.0;
      const std::size_t u =
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       std::ceil(std::max(raw, 0.0))));
      best = std::min(best,
                      static_cast<double>(u) * uni_delay_[p][qi][corner]);
    }
  }
  return best;
}

double StageDelayLut::wireCapPerPair(std::size_t q_idx,
                                     std::size_t corner) const {
  return 2.0 * wls_[q_idx] * tech_->wire(corner).cap_ff_per_um;
}

bool StageDelayLut::comboLegal(std::size_t p, std::size_t q_idx) const {
  const tech::Cell& cell = tech_->cell(p);
  for (std::size_t k = 0; k < tech_->numCorners(); ++k) {
    const double load =
        wls_[q_idx] * tech_->wire(k).cap_ff_per_um + cell.pin_cap_ff[k];
    if (load > 0.9 * cell.max_cap_ff) return false;
  }
  return true;
}

std::vector<RatioSample> StageDelayLut::ratioScatter(std::size_t k,
                                                     std::size_t k2) const {
  std::vector<RatioSample> out;
  for (std::size_t p = 0; p < numSizes(); ++p) {
    for (std::size_t qi = 0; qi < wls_.size(); ++qi) {
      const double q = wls_[qi];
      for (const double s : knobs_.sample_slews) {
        for (const double l : knobs_.sample_loads) {
          const double dk = pairDelayOnce(p, q, k, s, l, nullptr);
          const double dk2 = pairDelayOnce(p, q, k2, s, l, nullptr);
          const double d0 = pairDelayOnce(p, q, 0, s, l, nullptr);
          RatioSample smp;
          smp.delay_per_um_c0 = d0 / (2.0 * q);
          smp.ratio = dk / dk2;
          smp.size = p;
          smp.wl = q;
          out.push_back(smp);
        }
      }
    }
  }
  return out;
}

namespace {
// Least-squares quadratic through (x, y) points; returns {a, b, c}.
void fitQuadratic(const std::vector<double>& x, const std::vector<double>& y,
                  double* a, double* b, double* c) {
  const std::size_t n = x.size();
  if (n < 3) {  // degenerate: constant fit
    double m = 0.0;
    for (const double v : y) m += v;
    *a = *b = 0.0;
    *c = y.empty() ? 1.0 : m / static_cast<double>(n);
    return;
  }
  double s0 = static_cast<double>(n), s1 = 0, s2 = 0, s3 = 0, s4 = 0;
  double t0 = 0, t1 = 0, t2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i], yi = y[i];
    const double x2 = xi * xi;
    s1 += xi;
    s2 += x2;
    s3 += x2 * xi;
    s4 += x2 * x2;
    t0 += yi;
    t1 += xi * yi;
    t2 += x2 * yi;
  }
  // Solve [[s4 s3 s2][s3 s2 s1][s2 s1 s0]] [a b c]' = [t2 t1 t0]'.
  double m[3][4] = {{s4, s3, s2, t2}, {s3, s2, s1, t1}, {s2, s1, s0, t0}};
  for (int col = 0; col < 3; ++col) {
    int piv = col;
    for (int r = col + 1; r < 3; ++r)
      if (std::abs(m[r][col]) > std::abs(m[piv][col])) piv = r;
    for (int j = 0; j < 4; ++j) std::swap(m[piv][j], m[col][j]);
    if (std::abs(m[col][col]) < 1e-12) {
      *a = *b = 0.0;
      *c = t0 / s0;
      return;
    }
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (int j = col; j < 4; ++j) m[r][j] -= f * m[col][j];
    }
  }
  *a = m[0][3] / m[0][0];
  *b = m[1][3] / m[1][1];
  *c = m[2][3] / m[2][2];
}
}  // namespace

void StageDelayLut::fitBounds() {
  const std::size_t nk = tech_->numCorners();
  bounds_.assign(nk, std::vector<std::vector<RatioBound>>(
                         nk, std::vector<RatioBound>(2)));
  for (std::size_t k = 0; k < nk; ++k) {
    for (std::size_t k2 = 0; k2 < nk; ++k2) {
      if (k == k2) {
        for (int ub = 0; ub < 2; ++ub) {
          bounds_[k][k2][static_cast<std::size_t>(ub)] =
              RatioBound{0.0, 0.0, 1.0, 0.0, 1.0};
        }
        continue;
      }
      const std::vector<RatioSample> samples = ratioScatter(k, k2);
      double u_lo = std::numeric_limits<double>::infinity(), u_hi = -u_lo;
      for (const RatioSample& s : samples) {
        u_lo = std::min(u_lo, s.delay_per_um_c0);
        u_hi = std::max(u_hi, s.delay_per_um_c0);
      }
      // Bin by delay-per-unit-distance; envelope through bin extrema.
      const std::size_t nb = knobs_.ratio_bins;
      std::vector<double> bin_max(nb, -std::numeric_limits<double>::infinity());
      std::vector<double> bin_min(nb, std::numeric_limits<double>::infinity());
      for (const RatioSample& s : samples) {
        std::size_t bi = static_cast<std::size_t>(
            (s.delay_per_um_c0 - u_lo) / (u_hi - u_lo + 1e-12) *
            static_cast<double>(nb));
        bi = std::min(bi, nb - 1);
        bin_max[bi] = std::max(bin_max[bi], s.ratio);
        bin_min[bi] = std::min(bin_min[bi], s.ratio);
      }
      std::vector<double> xs, ys_max, ys_min;
      for (std::size_t bi = 0; bi < nb; ++bi) {
        if (bin_max[bi] < bin_min[bi]) continue;  // empty bin
        xs.push_back(u_lo + (static_cast<double>(bi) + 0.5) *
                                (u_hi - u_lo) / static_cast<double>(nb));
        ys_max.push_back(bin_max[bi]);
        ys_min.push_back(bin_min[bi]);
      }
      for (int upper = 0; upper < 2; ++upper) {
        RatioBound rb;
        fitQuadratic(xs, upper ? ys_max : ys_min, &rb.a, &rb.b, &rb.c);
        rb.u_lo = u_lo;
        rb.u_hi = u_hi;
        // Margin, then a final pass guaranteeing the fit truly envelopes
        // every sample.
        const double scale =
            upper ? 1.0 + knobs_.ratio_margin : 1.0 - knobs_.ratio_margin;
        rb.a *= scale;
        rb.b *= scale;
        rb.c *= scale;
        double worst = 0.0;
        for (const RatioSample& s : samples) {
          const double v = rb.eval(s.delay_per_um_c0);
          if (upper)
            worst = std::max(worst, s.ratio - v);
          else
            worst = std::max(worst, v - s.ratio);
        }
        rb.c += upper ? worst : -worst;
        bounds_[k][k2][static_cast<std::size_t>(upper)] = rb;
      }
    }
  }
}

const RatioBound& StageDelayLut::ratioBound(std::size_t k, std::size_t k2,
                                            bool upper) const {
  return bounds_[k][k2][upper ? 1 : 0];
}

}  // namespace skewopt::eco
