// Stage-delay lookup tables for inverter pairs (paper Sec. 4.1, Figs. 2-3).
//
// A clock "buffer" is an inverter pair. A *stage* is one pair plus its two
// fanout wire segments of length q: INV -> wire(q) -> INV -> wire(q). The
// paper characterizes, once per technology:
//
//   * LUTuniform — steady-state stage delay per (gate size p, inter-inverter
//     wirelength q, corner): the input slew is the pair chain's settled
//     (fixpoint) slew, and the trailing wire drives the next pair's input.
//     Applied to the middle pairs of an arc.
//   * LUTdetail  — stage delay of a boundary pair given an explicit input
//     slew and trailing load. Applied to the first and last pair of an arc.
//     (Evaluated on demand from the characterized NLDM library; the grid
//     sampling below exists for the ratio-bound fit.)
//
// From the same sweep the module derives the paper's Figure 2 envelope: for
// each corner pair, quadratic upper/lower bounds W_max/W_min on the
// achievable stage-delay ratio as a function of delay-per-unit-distance at
// the nominal corner. The global LP uses these in its Constraint (11).
#pragma once

#include <cstddef>
#include <vector>

#include "tech/tech.h"

namespace skewopt::eco {

struct LutKnobs {
  double wl_min_um = 10.0;
  double wl_max_um = 200.0;
  double wl_step_um = 5.0;
  std::vector<double> sample_slews = {10.0, 20.0, 40.0, 80.0, 160.0};
  std::vector<double> sample_loads = {2.0, 4.0, 8.0, 16.0, 32.0};
  double ratio_margin = 0.03;  ///< slack added outside the fitted envelope
  std::size_t ratio_bins = 14;
};

/// Quadratic bound a*u^2 + b*u + c over u in [u_lo, u_hi] (clamped outside).
struct RatioBound {
  double a = 0.0, b = 0.0, c = 1.0;
  double u_lo = 0.0, u_hi = 1.0;
  double eval(double u) const;
};

/// One scatter sample of the Figure 2 plot.
struct RatioSample {
  double delay_per_um_c0 = 0.0;
  double ratio = 1.0;
  std::size_t size = 0;
  double wl = 0.0;
};

class StageDelayLut {
 public:
  explicit StageDelayLut(const tech::TechModel& tech, LutKnobs knobs = {});

  const tech::TechModel& tech() const { return *tech_; }
  std::size_t numSizes() const { return tech_->numCells(); }
  const std::vector<double>& wirelengths() const { return wls_; }

  /// LUTuniform: settled per-pair stage delay (ps).
  double uniformDelay(std::size_t p, std::size_t q_idx,
                      std::size_t corner) const;
  /// Settled input slew of the repeating chain (ps).
  double uniformSlew(std::size_t p, std::size_t q_idx,
                     std::size_t corner) const;

  /// LUTdetail: boundary-pair stage delay with explicit input slew and
  /// trailing load (the receiver pin plus its wire), evaluated from the
  /// characterized library.
  double detailDelay(std::size_t p, double q_um, std::size_t corner,
                     double slew_in, double last_load_ff) const;
  /// Output slew of a boundary pair (for chaining detail evaluations).
  double detailOutSlew(std::size_t p, double q_um, std::size_t corner,
                       double slew_in, double last_load_ff) const;

  /// Estimated delay of an arc built as u pairs of size p spaced q, seen
  /// from input slew `slew_in` into final load `last_load_ff`
  /// (first/last pair from LUTdetail, middle pairs from LUTuniform).
  double arcDelay(std::size_t p, std::size_t q_idx, std::size_t u,
                  std::size_t corner, double slew_in,
                  double last_load_ff) const;

  /// Minimum achievable delay for an arc of the given Manhattan length
  /// (optimal buffer insertion, no routing detour) — the LP's lower bound
  /// D_min of its Constraint (10).
  double minAchievableDelay(double arc_len_um, std::size_t corner) const;

  /// Figure 2 envelope for corner pair (k, k'): bounds on
  /// stage_delay(k)/stage_delay(k') vs delay-per-unit-distance at c0.
  const RatioBound& ratioBound(std::size_t k, std::size_t k2,
                               bool upper) const;

  /// Raw scatter samples for corner pair (k, k') — used by the Figure 2
  /// bench and by tests that check the envelope actually envelopes.
  std::vector<RatioSample> ratioScatter(std::size_t k, std::size_t k2) const;

  double wireCapPerPair(std::size_t q_idx, std::size_t corner) const;

  /// True iff a (size, spacing) combo keeps every inverter in the chain
  /// within its max-cap limit at every corner (worst case: Cmax BEOL).
  bool comboLegal(std::size_t p, std::size_t q_idx) const;

 private:
  std::size_t qIndex(double q_um) const;
  double pairDelayOnce(std::size_t p, double q_um, std::size_t corner,
                       double slew_in, double next_pin_load_ff,
                       double* out_slew) const;
  void characterize();
  void fitBounds();

  const tech::TechModel* tech_;
  LutKnobs knobs_;
  std::vector<double> wls_;
  // [p][q][corner]
  std::vector<std::vector<std::vector<double>>> uni_delay_, uni_slew_;
  // bounds_[k][k2][0/1] lower/upper, only for k < k2 pairs + (k,0) usage
  std::vector<std::vector<std::vector<RatioBound>>> bounds_;
};

}  // namespace skewopt::eco
