#include "geom/geom.h"

namespace skewopt::geom {

double Rect::aspect() const {
  const double w = width();
  const double h = height();
  const double hi = std::max(w, h);
  if (hi <= 0.0) return 1.0;
  return std::min(w, h) / hi;
}

Point Region::clamp(const Point& p) const {
  if (rects_.empty() || contains(p)) return p;
  Point best = p;
  double best_d = -1.0;
  for (const Rect& r : rects_) {
    const Point q = r.clamp(p);
    const double d = manhattan(p, q);
    if (best_d < 0.0 || d < best_d) {
      best_d = d;
      best = q;
    }
  }
  return best;
}

Point Rng::pointIn(const Region& region) {
  const auto& rects = region.rects();
  if (rects.empty()) return {};
  const double total = region.area();
  double pick = uniform(0.0, total);
  for (const Rect& r : rects) {
    pick -= r.area();
    if (pick <= 0.0) return pointIn(r);
  }
  return pointIn(rects.back());
}

}  // namespace skewopt::geom
