// Basic planar geometry for clock-network optimization.
//
// All coordinates are in microns. The clock-network code is purely
// rectilinear (Manhattan) — wirelength and distances use the L1 metric.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace skewopt::geom {

/// A point in the placement plane, in microns.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Manhattan (L1) distance between two points, in microns.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean distance; used only for reporting, never for wirelength.
inline double euclidean(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Linear interpolation between two points (t in [0, 1]).
inline Point lerp(const Point& a, const Point& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Axis-aligned rectangle. Empty iff ux < lx or uy < ly.
struct Rect {
  double lx = 0.0;
  double ly = 0.0;
  double ux = -1.0;
  double uy = -1.0;

  static Rect around(const Point& c, double half_w, double half_h) {
    return {c.x - half_w, c.y - half_h, c.x + half_w, c.y + half_h};
  }

  bool empty() const { return ux < lx || uy < ly; }
  double width() const { return empty() ? 0.0 : ux - lx; }
  double height() const { return empty() ? 0.0 : uy - ly; }
  double area() const { return width() * height(); }
  /// Aspect ratio, reported as min(w, h) / max(w, h) in (0, 1].
  double aspect() const;
  Point center() const { return {(lx + ux) / 2.0, (ly + uy) / 2.0}; }

  bool contains(const Point& p) const {
    return !empty() && p.x >= lx && p.x <= ux && p.y >= ly && p.y <= uy;
  }

  bool intersects(const Rect& o) const {
    return !empty() && !o.empty() && lx <= o.ux && o.lx <= ux && ly <= o.uy &&
           o.ly <= uy;
  }

  Rect expanded(double margin) const {
    return {lx - margin, ly - margin, ux + margin, uy + margin};
  }

  /// Clamp a point into this rectangle.
  Point clamp(const Point& p) const {
    return {std::clamp(p.x, lx, ux), std::clamp(p.y, ly, uy)};
  }
};

/// Running bounding box over a set of points.
class BBox {
 public:
  void add(const Point& p) {
    if (empty_) {
      r_ = {p.x, p.y, p.x, p.y};
      empty_ = false;
    } else {
      r_.lx = std::min(r_.lx, p.x);
      r_.ly = std::min(r_.ly, p.y);
      r_.ux = std::max(r_.ux, p.x);
      r_.uy = std::max(r_.uy, p.y);
    }
  }
  void add(const Rect& r) {
    if (r.empty()) return;
    add(Point{r.lx, r.ly});
    add(Point{r.ux, r.uy});
  }
  bool empty() const { return empty_; }
  /// The accumulated rectangle; an empty Rect if no points were added.
  Rect rect() const { return empty_ ? Rect{} : r_; }
  /// Half-perimeter wirelength of the box (the HPWL lower bound of an RSMT).
  double halfPerimeter() const { return empty_ ? 0.0 : r_.width() + r_.height(); }

 private:
  Rect r_;
  bool empty_ = true;
};

/// A rectilinear region expressed as a union of rectangles (e.g. the
/// L-shaped memory-controller floorplan). Rectangles may overlap.
class Region {
 public:
  Region() = default;
  explicit Region(std::vector<Rect> rects) : rects_(std::move(rects)) {}

  void add(const Rect& r) { rects_.push_back(r); }
  const std::vector<Rect>& rects() const { return rects_; }
  bool empty() const { return rects_.empty(); }

  bool contains(const Point& p) const {
    for (const Rect& r : rects_)
      if (r.contains(p)) return true;
    return false;
  }

  /// Total area, ignoring overlaps (generators use disjoint rectangles).
  double area() const {
    double a = 0.0;
    for (const Rect& r : rects_) a += r.area();
    return a;
  }

  /// Bounding box over all member rectangles.
  Rect bbox() const {
    BBox b;
    for (const Rect& r : rects_) b.add(r);
    return b.rect();
  }

  /// Nearest point inside the region (by L1 clamping per rectangle).
  Point clamp(const Point& p) const;

 private:
  std::vector<Rect> rects_;
};

/// Snap a coordinate to a placement grid (site or row pitch).
inline double snap(double v, double grid) {
  if (grid <= 0.0) return v;
  return std::round(v / grid) * grid;
}

/// Deterministic random number engine used throughout the project so that
/// every testcase, training set and benchmark is reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : s_(splitmix(seed)) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform integer in [0, n); n must be > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform() * static_cast<double>(n)) % n;
  }
  /// Uniform integer in [lo, hi] inclusive.
  int intIn(int lo, int hi) {
    return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo + 1)));
  }
  /// Standard normal via Box-Muller.
  double normal() {
    const double u1 = std::max(uniform(), 1e-12);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }
  double normal(double mean, double sigma) { return mean + sigma * normal(); }
  /// Uniform point inside a rectangle.
  Point pointIn(const Rect& r) {
    return {uniform(r.lx, r.ux), uniform(r.ly, r.uy)};
  }
  /// Uniform point inside a region (area-weighted over member rectangles).
  Point pointIn(const Region& region);

  /// Fork an independent, deterministic sub-stream.
  Rng fork() { return Rng(next()); }

 private:
  // xorshift128+ style generator seeded through splitmix64.
  std::uint64_t next() {
    std::uint64_t x = s_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    s_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }
  static std::uint64_t splitmix(std::uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return (z ^ (z >> 31)) | 1ULL;
  }
  std::uint64_t s_;
};

}  // namespace skewopt::geom
