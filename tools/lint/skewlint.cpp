// skewlint engine: comment/string-stripping lexer, token stream with
// line numbers, and the LNT### rules over it. See skewlint.h for the
// catalog and docs/static_analysis.md for rationale and suppression
// policy.
#include "tools/lint/skewlint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "serve/json.h"

namespace skewopt::lint {

namespace {

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Normalizes a path for rule scoping: backslashes to slashes, leading
/// "./" stripped, and everything before an embedded "src/" or "tools/"
/// component dropped so absolute paths scope like repo-relative ones.
std::string scopedPath(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  while (startsWith(p, "./")) p = p.substr(2);
  for (const char* root : {"/src/", "/tools/", "/tests/"}) {
    const std::size_t at = p.find(root);
    if (at != std::string::npos) return p.substr(at + 1);
  }
  return p;
}

bool isHeaderPath(const std::string& p) {
  return p.size() >= 2 && (p.substr(p.size() - 2) == ".h" ||
                           (p.size() >= 4 && p.substr(p.size() - 4) == ".hpp"));
}

bool inDir(const std::string& p, const char* dir) {
  return startsWith(p, std::string(dir) + "/");
}

/// Result-affecting modules for LNT002: an unordered iteration here can
/// leak hash order into LP rows, timing results, or wire replies.
bool inResultModule(const std::string& p) {
  for (const char* m :
       {"src/core", "src/lp", "src/sta", "src/serve", "src/cluster",
        "src/check", "src/network"})
    if (inDir(p, m)) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Strip pass: per-line code text (comments and string/char literals
// blanked) plus per-line comment text (where suppressions live).

struct StrippedLine {
  std::string code;
  std::string comment;
};

std::vector<StrippedLine> stripSource(const std::string& text) {
  std::vector<StrippedLine> lines(1);
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar,
                    kRawString };
  Mode mode = Mode::kCode;
  std::string raw_delim;  // for kRawString: ")delim" terminator
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (mode == Mode::kLineComment) mode = Mode::kCode;
      lines.emplace_back();
      continue;
    }
    StrippedLine& line = lines.back();
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (line.code.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(
                         line.code.back())) &&
                     line.code.back() != '_'))) {
          // R"delim( ... )delim" — find the delimiter.
          std::size_t open = text.find('(', i + 2);
          if (open == std::string::npos) open = text.size();
          raw_delim = ")" + text.substr(i + 2, open - (i + 2)) + "\"";
          mode = Mode::kRawString;
          line.code += ' ';
          i = open;  // skip to the opening paren
        } else if (c == '"') {
          mode = Mode::kString;
          line.code += ' ';
        } else if (c == '\'') {
          mode = Mode::kChar;
          line.code += ' ';
        } else {
          line.code += c;
        }
        break;
      case Mode::kLineComment:
        line.comment += c;
        break;
      case Mode::kBlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::kCode;
          ++i;
        } else {
          line.comment += c;
        }
        break;
      case Mode::kString:
        if (c == '\\')
          ++i;
        else if (c == '"')
          mode = Mode::kCode;
        break;
      case Mode::kChar:
        if (c == '\\')
          ++i;
        else if (c == '\'')
          mode = Mode::kCode;
        break;
      case Mode::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          mode = Mode::kCode;
        }
        break;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Suppressions: `SKEWLINT-ALLOW(LNT###: reason)` in any comment.

struct Suppressions {
  /// line (1-based) -> codes suppressed on that line.
  std::map<int, std::set<int>> by_line;
  /// Malformed suppressions (missing/empty reason or unparseable code).
  std::vector<int> malformed_lines;
};

Suppressions collectSuppressions(const std::vector<StrippedLine>& lines) {
  Suppressions s;
  static const std::string kTag = "SKEWLINT-ALLOW";
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& c = lines[li].comment;
    std::size_t at = 0;
    while ((at = c.find(kTag, at)) != std::string::npos) {
      const int line = static_cast<int>(li) + 1;
      std::size_t p = at + kTag.size();
      at = p;
      bool ok = false;
      int code = 0;
      if (p < c.size() && c[p] == '(' &&
          c.compare(p + 1, 3, "LNT") == 0) {
        std::size_t q = p + 4;
        while (q < c.size() && std::isdigit(static_cast<unsigned char>(c[q])))
          code = code * 10 + (c[q++] - '0');
        if (q > p + 4 && q < c.size() && c[q] == ':') {
          // Justification: at least one non-space character before ')'.
          const std::size_t close = c.find(')', q);
          if (close != std::string::npos) {
            const std::string reason = c.substr(q + 1, close - q - 1);
            ok = reason.find_first_not_of(" \t") != std::string::npos;
          }
        }
      }
      if (ok)
        s.by_line[line].insert(code);
      else
        s.malformed_lines.push_back(line);
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Token stream.

struct Token {
  enum class Kind { kIdent, kPunct };
  Kind kind;
  std::string text;
  int line;  // 1-based
};

std::vector<Token> tokenize(const std::vector<StrippedLine>& lines) {
  std::vector<Token> toks;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li].code;
    const int line = static_cast<int>(li) + 1;
    std::size_t i = 0;
    while (i < s.size()) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (std::isspace(c)) {
        ++i;
        continue;
      }
      if (std::isalpha(c) || c == '_') {
        std::size_t j = i + 1;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) ||
                s[j] == '_'))
          ++j;
        toks.push_back({Token::Kind::kIdent, s.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (std::isdigit(c)) {  // numbers: swallow as one ident-ish token
        std::size_t j = i + 1;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) ||
                s[j] == '.' || s[j] == '\''))
          ++j;
        toks.push_back({Token::Kind::kIdent, s.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        toks.push_back({Token::Kind::kPunct, "::", line});
        i += 2;
        continue;
      }
      toks.push_back({Token::Kind::kPunct, std::string(1, s[i]), line});
      ++i;
    }
  }
  return toks;
}

/// Balanced <...> skip in a raw token vector, starting at the '<'.
std::size_t skipAnglesIn(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kPunct && toks[i].text == "<") ++depth;
    if (toks[i].kind == Token::Kind::kPunct && toks[i].text == ">" &&
        --depth == 0)
      return i + 1;
  }
  return i;
}

/// Names declared with an unordered_map/unordered_set type anywhere in the
/// token stream. Collected up-front (not during the rule pass) so members
/// declared below their uses — and in a companion header — are still seen.
std::set<std::string> unorderedDeclNames(const std::vector<Token>& toks) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        (toks[i].text != "unordered_map" && toks[i].text != "unordered_set"))
      continue;
    if (i + 1 >= toks.size() || toks[i + 1].kind != Token::Kind::kPunct ||
        toks[i + 1].text != "<")
      continue;
    std::size_t j = skipAnglesIn(toks, i + 1);
    while (j < toks.size() &&
           ((toks[j].kind == Token::Kind::kIdent &&
             toks[j].text == "const") ||
            (toks[j].kind == Token::Kind::kPunct &&
             (toks[j].text == "&" || toks[j].text == "*"))))
      ++j;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent)
      names.insert(toks[j].text);
  }
  return names;
}

// ---------------------------------------------------------------------------
// The rule pass.

class Linter {
 public:
  Linter(std::string path, const std::string& text,
         const std::string& companion_text)
      : path_(scopedPath(path)), label_(std::move(path)) {
    lines_ = stripSource(text);
    supp_ = collectSuppressions(lines_);
    toks_ = tokenize(lines_);
    unordered_names_ = unorderedDeclNames(toks_);
    if (!companion_text.empty()) {
      const std::set<std::string> extra =
          unorderedDeclNames(tokenize(stripSource(companion_text)));
      unordered_names_.insert(extra.begin(), extra.end());
    }
  }

  std::vector<Finding> run() {
    for (const int line : supp_.malformed_lines)
      report(90, "bad-suppression", line,
             "SKEWLINT-ALLOW needs the form (LNT###: reason) — a "
             "justification is mandatory and this one suppresses nothing");
    lintIncludes();
    lintTokens();
    return std::move(findings_);
  }

 private:
  struct ClassScope {
    std::string name;
    int body_depth;  // brace depth of the members
    bool has_guarded = false;
    std::vector<std::pair<int, std::string>> mutex_fields;  // line, name
  };

  bool suppressed(int code, int line) const {
    const auto at = supp_.by_line.find(line);
    if (at != supp_.by_line.end() && at->second.count(code)) return true;
    // A comment-only line immediately above covers the line below it.
    const auto above = supp_.by_line.find(line - 1);
    if (above != supp_.by_line.end() && above->second.count(code) &&
        line - 2 < static_cast<int>(lines_.size())) {
      const std::string& code_text = lines_[static_cast<std::size_t>(line - 2)]
                                         .code;
      if (code_text.find_first_not_of(" \t") == std::string::npos) return true;
    }
    return false;
  }

  void report(int code, const char* rule, int line, std::string message) {
    if (code != 90 && suppressed(code, line)) return;
    findings_.push_back({code, check::Severity::kError, rule, label_, line,
                         std::move(message)});
  }

  // LNT030 + include context: headers must not pull in <iostream> (static
  // initialization order + code-size hazards in a library) or <regex>
  // (catastrophic compile and runtime costs; the repo hand-rolls parsers).
  void lintIncludes() {
    for (std::size_t li = 0; li < lines_.size(); ++li) {
      const std::string& s = lines_[li].code;
      std::size_t p = s.find_first_not_of(" \t");
      if (p == std::string::npos || s[p] != '#') continue;
      p = s.find_first_not_of(" \t", p + 1);
      if (p == std::string::npos || s.compare(p, 7, "include") != 0) continue;
      p = s.find_first_not_of(" \t", p + 7);
      if (p == std::string::npos) continue;
      const char open = s[p];
      const char close = open == '<' ? '>' : '"';
      const std::size_t end = s.find(close, p + 1);
      if (end == std::string::npos) continue;
      const std::string name = s.substr(p + 1, end - p - 1);
      includes_.push_back(name);
      if (isHeaderPath(path_) && open == '<' &&
          (name == "iostream" || name == "regex"))
        report(30, "banned-include", static_cast<int>(li) + 1,
               "header includes <" + name +
                   ">; banned in headers (see docs/static_analysis.md)");
    }
  }

  const Token& tok(std::size_t i) const {
    static const Token kEnd{Token::Kind::kPunct, "", 0};
    return i < toks_.size() ? toks_[i] : kEnd;
  }
  bool isIdent(std::size_t i, const char* text) const {
    return tok(i).kind == Token::Kind::kIdent && tok(i).text == text;
  }
  bool isPunct(std::size_t i, const char* text) const {
    return tok(i).kind == Token::Kind::kPunct && tok(i).text == text;
  }

  /// Index just past the matching closer for the opener at `i`.
  std::size_t skipBalanced(std::size_t i, const char* open,
                           const char* close) const {
    int depth = 0;
    for (; i < toks_.size(); ++i) {
      if (isPunct(i, open)) ++depth;
      if (isPunct(i, close) && --depth == 0) return i + 1;
    }
    return i;
  }

  void lintTokens() {
    const bool exempt_nondet =
        inDir(path_, "src/obs") || inDir(path_, "src/testgen");
    const bool exempt_thread =
        inDir(path_, "src/support") || inDir(path_, "src/serve");
    const bool unordered_module = inResultModule(path_);

    int depth = 0;
    bool pending_class = false;
    std::string pending_name;
    std::vector<ClassScope> classes;

    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];

      // --- brace/namespace/class context ------------------------------
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "{") {
          ++depth;
          if (pending_class) {
            classes.push_back({pending_name, depth, false, {}});
            pending_class = false;
          }
        } else if (t.text == "}") {
          if (!classes.empty() && classes.back().body_depth == depth)
            finishClass(classes.back()), classes.pop_back();
          if (depth > 0) --depth;
        } else if (t.text == ";") {
          pending_class = false;  // forward declaration
        }
        continue;
      }

      // namespace NAME — tracked for message context only.
      if (t.text == "namespace" && tok(i + 1).kind == Token::Kind::kIdent)
        continue;

      if ((t.text == "class" || t.text == "struct") &&
          tok(i + 1).kind == Token::Kind::kIdent &&
          !(i > 0 && (isPunct(i - 1, "<") || isPunct(i - 1, ",")))) {
        // Skip attribute-like macros (`class SKEWOPT_CAPABILITY("mutex")
        // Mutex`): an identifier directly followed by '(' is not the name.
        std::size_t j = i + 1;
        while (tok(j).kind == Token::Kind::kIdent && isPunct(j + 1, "("))
          j = skipBalanced(j + 1, "(", ")");
        if (tok(j).kind == Token::Kind::kIdent) {
          pending_class = true;
          pending_name = tok(j).text;
        }
        continue;
      }

      // --- LNT003 bookkeeping ----------------------------------------
      if (!classes.empty()) {
        ClassScope& cls = classes.back();
        if (t.text == "SKEWOPT_GUARDED_BY" || t.text == "GUARDED_BY" ||
            t.text == "SKEWOPT_PT_GUARDED_BY" || t.text == "PT_GUARDED_BY")
          cls.has_guarded = true;
        if ((t.text == "mutex" || t.text == "Mutex") &&
            depth == cls.body_depth &&
            tok(i + 1).kind == Token::Kind::kIdent)
          cls.mutex_fields.emplace_back(t.line, tok(i + 1).text);
      }

      // --- LNT001: nondeterminism APIs -------------------------------
      if (!exempt_nondet) {
        if (t.text == "system_clock" || t.text == "random_device" ||
            t.text == "getenv" || t.text == "srand")
          report(1, "wall-clock-or-env", t.line,
                 "'" + t.text +
                     "' is a nondeterminism source; result paths must be "
                     "pure functions of the spec (allowed only in src/obs "
                     "and seeded testgen)");
        if ((t.text == "rand" || t.text == "time") && isPunct(i + 1, "("))
          report(1, "wall-clock-or-env", t.line,
                 "'" + t.text +
                     "()' is a nondeterminism source; use the seeded "
                     "geom RNG / obs::nowNs instead");
      }

      // --- LNT004: relaxed atomics -----------------------------------
      if (t.text == "memory_order_relaxed" && !inDir(path_, "src/obs"))
        report(4, "relaxed-atomic", t.line,
               "relaxed-ordering atomics are allowed only in src/obs "
               "(metrics/trace fast paths); everything else must state "
               "acquire/release semantics");

      // --- LNT010: raw threads ---------------------------------------
      if (!exempt_thread) {
        if (t.text == "thread" && i >= 2 && isIdent(i - 2, "std") &&
            isPunct(i - 1, "::"))
          report(10, "raw-thread", t.line,
                 "raw std::thread outside src/support and src/serve; use "
                 "support::ThreadPool or the serve scheduler's workers");
        if (t.text == "detach" && isPunct(i + 1, "(") && i > 0 &&
            isPunct(i - 1, "."))
          report(10, "raw-thread", t.line,
                 "detach() orphans a thread past shutdown ordering; join "
                 "through an owner instead");
      }

      // --- LNT011: swallowed catch (...) -----------------------------
      if (t.text == "catch" && isPunct(i + 1, "(") && isPunct(i + 2, ".") &&
          isPunct(i + 3, ".") && isPunct(i + 4, ".") && isPunct(i + 5, ")"))
        lintCatchAll(i + 6, t.line);

      // --- LNT002: iteration over a tracked unordered container ------
      if (unordered_module && t.text == "for" && isPunct(i + 1, "(")) {
        const std::size_t end = skipBalanced(i + 1, "(", ")");
        lintRangeFor(i + 1, end, t.line);
      }
      if (unordered_module && t.kind == Token::Kind::kIdent &&
          unordered_names_.count(t.text) && isPunct(i + 1, ".") &&
          (isIdent(i + 2, "begin") || isIdent(i + 2, "cbegin")) &&
          isPunct(i + 3, "("))
        report(2, "unordered-iteration", t.line,
               "iterator walk over unordered container '" + t.text +
                   "' in a result-affecting module; iterate a sorted view "
                   "or justify with SKEWLINT-ALLOW(LNT002: ...)");
    }
  }

  /// `open` is the index of the for's '(' and `end` one past its ')'.
  /// A lone ':' at paren depth 1 makes it a range-for; every identifier in
  /// the range expression is checked against the unordered declarations.
  void lintRangeFor(std::size_t open, std::size_t end, int line) {
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t i = open; i < end; ++i) {
      if (isPunct(i, "(")) ++depth;
      if (isPunct(i, ")")) --depth;
      if (depth == 1 && isPunct(i, ":")) {
        colon = i;
        break;
      }
      if (depth == 1 && isPunct(i, ";")) return;  // classic for
    }
    if (colon == 0) return;
    for (std::size_t i = colon + 1; i + 1 < end; ++i) {
      // A function call in the range expression (sortedNames(b_idx),
      // sortedView(m)...) is assumed to normalize the order.
      if (tok(i).kind == Token::Kind::kIdent && isPunct(i + 1, "(")) return;
      if (tok(i).kind == Token::Kind::kIdent &&
          unordered_names_.count(tok(i).text)) {
        report(2, "unordered-iteration", line,
               "range-for over unordered container '" + tok(i).text +
                   "' in a result-affecting module; hash order must not "
                   "reach results — iterate a sorted view or justify with "
                   "SKEWLINT-ALLOW(LNT002: ...)");
        return;
      }
    }
  }

  /// `i` points just past `catch (...)`. The handler must rethrow (throw /
  /// rethrow_exception), capture (current_exception), or log; a silent
  /// swallow turns every failure mode into a mystery.
  void lintCatchAll(std::size_t i, int line) {
    while (i < toks_.size() && !isPunct(i, "{")) ++i;
    const std::size_t end = skipBalanced(i, "{", "}");
    static const std::set<std::string> kHandled = {
        "throw",   "rethrow_exception", "current_exception", "cerr",
        "fprintf", "perror",            "report",            "log",
        "abort",   "terminate",         "fail",              "error"};
    for (std::size_t j = i; j < end; ++j)
      if (tok(j).kind == Token::Kind::kIdent && kHandled.count(tok(j).text))
        return;
    report(11, "swallowed-catch", line,
           "catch (...) neither rethrows, captures, nor logs; failures "
           "must stay observable");
  }

  void finishClass(const ClassScope& cls) {
    if (cls.mutex_fields.empty() || cls.has_guarded) return;
    for (const auto& [line, name] : cls.mutex_fields)
      report(3, "unguarded-mutex", line,
             "class " + cls.name + " holds mutex '" + name +
                 "' but no member is GUARDED_BY it; annotate the guarded "
                 "state (support/thread_annotations.h) so -Wthread-safety "
                 "can prove the locking discipline");
  }

  std::string path_;   ///< scoped (repo-relative) path for rule dispatch
  std::string label_;  ///< path as given, used in findings
  std::vector<StrippedLine> lines_;
  Suppressions supp_;
  std::vector<Token> toks_;
  std::vector<std::string> includes_;
  std::set<std::string> unordered_names_;
  std::vector<Finding> findings_;
};

}  // namespace

std::string lintCodeString(int code) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "LNT%03d", code);
  return buf;
}

std::vector<Finding> lintSource(const std::string& path,
                                const std::string& text,
                                const std::string& companion_text) {
  return Linter(path, text, companion_text).run();
}

std::vector<Finding> lintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("skewlint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  // A .cpp sees its sibling header's declarations (members like
  // `std::unordered_map<...> nets_;` live there, the iterations here).
  std::string companion;
  const std::size_t dot = path.rfind(".cpp");
  if (dot != std::string::npos && dot == path.size() - 4) {
    std::ifstream hin(path.substr(0, dot) + ".h", std::ios::binary);
    if (hin) {
      std::ostringstream hs;
      hs << hin.rdbuf();
      companion = hs.str();
    }
  }
  return lintSource(path, ss.str(), companion);
}

std::string textReport(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += lintCodeString(f.code);
    out += ' ';
    out += check::severityName(f.severity);
    out += " [" + f.rule + "] " + f.file + ":" + std::to_string(f.line) +
           ": " + f.message + "\n";
  }
  return out;
}

std::string jsonReport(const std::vector<Finding>& findings) {
  namespace json = serve::json;
  std::size_t errors = 0, warnings = 0;
  json::Value arr = json::Value::array();
  for (const Finding& f : findings) {
    (f.severity == check::Severity::kError ? errors : warnings) += 1;
    json::Value v = json::Value::object();
    v.set("code", lintCodeString(f.code));
    v.set("severity", check::severityName(f.severity));
    v.set("rule", f.rule);
    v.set("file", f.file);
    v.set("line", f.line);
    v.set("message", f.message);
    arr.push(std::move(v));
  }
  json::Value top = json::Value::object();
  top.set("tool", "skewlint");
  top.set("errors", errors);
  top.set("warnings", warnings);
  top.set("findings", std::move(arr));
  return json::dump(top);
}

}  // namespace skewopt::lint
