// skewlint: the repo's determinism & concurrency lint pass.
//
// A small in-tree C++ source scanner (lexer + line rules with
// include/namespace/class context tracking — deliberately no clang-lib
// dependency) that encodes *this codebase's* reproducibility rules as
// stable `LNT###` codes, the static-analysis sibling of the runtime
// `SKW###` checkers in src/check. The headline guarantees — delta == cold,
// sharded == single-shard, serial == parallel — all rest on source-level
// discipline nothing else enforces: no wall-clock or environment reads in
// result paths, no iteration over unordered containers feeding LP rows or
// wire replies, no lock-guarded state without a GUARDED_BY annotation.
//
// Codes (catalog + rationale in docs/static_analysis.md):
//   LNT001  nondeterminism API (system_clock/time()/rand/random_device/
//           getenv) outside src/obs and the seeded testgen paths
//   LNT002  iteration over unordered_map/unordered_set in a
//           result-affecting module without a sort or a justified
//           suppression
//   LNT003  std::mutex / support::Mutex field in a class with no
//           GUARDED_BY-annotated member
//   LNT004  relaxed-ordering atomic outside src/obs
//   LNT010  raw std::thread construction or detach() outside src/support
//           and src/serve
//   LNT011  catch (...) that neither rethrows nor logs
//   LNT030  banned include in a header (<iostream>, <regex>)
//   LNT090  malformed SKEWLINT-ALLOW suppression (missing justification)
//
// Suppressions: `// SKEWLINT-ALLOW(LNT###: reason)` on the offending line
// (or alone on the line above) silences that code there. The reason is
// mandatory — a reason-less suppression is itself a finding (LNT090) and
// suppresses nothing. Severities reuse the check::Severity model of the
// runtime DiagnosticEngine.
#pragma once

#include <string>
#include <vector>

#include "check/diagnostics.h"

namespace skewopt::lint {

struct Finding {
  int code = 0;  ///< LNT### number
  check::Severity severity = check::Severity::kError;
  std::string rule;     ///< short rule name, e.g. "unordered-iteration"
  std::string file;     ///< path as given to the scanner
  int line = 0;         ///< 1-based
  std::string message;  ///< human-readable finding
};

/// "LNT###", zero-padded to three digits.
std::string lintCodeString(int code);

/// Lints one translation unit given its contents; `path` scopes the
/// per-rule module/directory exemptions (it should be repo-relative, e.g.
/// "src/serve/scheduler.cpp") and labels the findings. Pure — the fixture
/// tests drive it with in-memory sources. `companion_text`, when
/// non-empty, contributes declarations only (the sibling header of a .cpp,
/// so member containers declared there are tracked here).
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& text,
                                const std::string& companion_text = "");

/// Reads `path` and lints it, seeding declarations from the sibling
/// header when one exists. Throws std::runtime_error if unreadable.
std::vector<Finding> lintFile(const std::string& path);

/// One "LNT### severity [rule] file:line: message" line per finding.
std::string textReport(const std::vector<Finding>& findings);

/// {"tool":"skewlint","errors":N,"warnings":N,"findings":[...]} — same
/// shape family as check::DiagnosticEngine::json(), plus file/line.
std::string jsonReport(const std::vector<Finding>& findings);

}  // namespace skewopt::lint
