// skewlint CLI: walks the given files/directories, lints every C++
// source, and exits nonzero when any finding is not covered by the
// baseline. Usage:
//
//   skewlint [--json OUT.json] [--baseline tools/lint/baseline.json] PATH...
//
// PATH may be a file or a directory (recursed for .h/.hpp/.cpp). Paths
// should be repo-relative (run from the repo root) so the per-rule
// directory scoping applies.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "serve/json.h"
#include "tools/lint/skewlint.h"

namespace fs = std::filesystem;
using skewopt::lint::Finding;

namespace {

bool isSourcePath(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::vector<std::string> collectSources(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& a : args) {
    if (fs::is_directory(a)) {
      for (const auto& e : fs::recursive_directory_iterator(a))
        if (e.is_regular_file() && isSourcePath(e.path()))
          files.push_back(e.path().generic_string());
    } else {
      files.push_back(a);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Baseline entries are (code, file, line) triples; the checked-in
/// baseline must stay empty — this exists so a future emergency has an
/// escape hatch that is loudly visible in review.
std::set<std::string> loadBaseline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "skewlint: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  namespace json = skewopt::serve::json;
  std::set<std::string> keys;
  const json::Value v = json::parse(ss.str());
  if (const json::Value* arr = v.find("findings"); arr && arr->isArray())
    for (const json::Value& f : arr->items())
      keys.insert(f.str("code", "") + "|" + f.str("file", "") + "|" +
                  std::to_string(static_cast<long>(f.num("line", 0))));
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::string baseline_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: skewlint [--json OUT.json] [--baseline FILE] PATH...\n");
      return 0;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) paths.push_back("src");

  std::set<std::string> baseline;
  if (!baseline_path.empty()) baseline = loadBaseline(baseline_path);

  std::vector<Finding> findings;
  std::size_t files = 0;
  for (const std::string& file : collectSources(paths)) {
    ++files;
    std::vector<Finding> fs_ = skewopt::lint::lintFile(file);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }

  std::vector<Finding> active;
  for (Finding& f : findings) {
    const std::string key = skewopt::lint::lintCodeString(f.code) + "|" +
                            f.file + "|" + std::to_string(f.line);
    if (!baseline.count(key)) active.push_back(std::move(f));
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    out << skewopt::lint::jsonReport(active) << "\n";
  }
  std::fputs(skewopt::lint::textReport(active).c_str(), stdout);
  std::printf("skewlint: %zu file(s), %zu finding(s)%s\n", files,
              active.size(),
              findings.size() != active.size() ? " (after baseline)" : "");
  return active.empty() ? 0 : 1;
}
