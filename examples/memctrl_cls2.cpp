// Memory-controller scenario (paper's CLS2 class): an L-shaped block with
// the controller in the corner and interface logic at the far ends of the
// arms. The ~1mm launch-capture separations force long, heavily buffered
// clock paths whose delay composition differs per branch — the textbook
// source of cross-corner skew variation.
//
// This example digs into *where* the variation lives: it buckets sink
// pairs by physical separation, shows that the long interface<->controller
// pairs dominate the objective, runs the global-local flow, and shows the
// per-bucket improvement.
//
//   ./build/examples/memctrl_cls2 [--sinks N]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/flow.h"
#include "testgen/testgen.h"

using namespace skewopt;

namespace {

struct Bucket {
  const char* label;
  double lo, hi;  // separation range, um
  double sum_v = 0.0;
  std::size_t count = 0;
};

void fillBuckets(const network::Design& d, const core::VariationReport& r,
                 std::vector<Bucket>* buckets) {
  for (Bucket& b : *buckets) {
    b.sum_v = 0.0;
    b.count = 0;
  }
  for (std::size_t pi = 0; pi < d.pairs.size(); ++pi) {
    const double sep =
        geom::manhattan(d.tree.node(d.pairs[pi].launch).pos,
                        d.tree.node(d.pairs[pi].capture).pos);
    for (Bucket& b : *buckets) {
      if (sep >= b.lo && sep < b.hi) {
        b.sum_v += r.v_pair_ps[pi];
        ++b.count;
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sinks = 160;
  for (int i = 1; i + 1 < argc; i += 2)
    if (std::strcmp(argv[i], "--sinks") == 0)
      sinks = static_cast<std::size_t>(std::stoul(argv[i + 1]));

  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);
  const sta::Timer timer(tech);

  testgen::TestcaseOptions topt;
  topt.sinks = sinks;
  topt.max_pairs = 150;
  network::Design d = testgen::makeCls2(tech, topt);
  std::printf("%s: L-shaped floorplan %.2f mm2, %zu FFs, %zu pairs "
              "(corners c0,c1,c2)\n",
              d.name.c_str(), d.floorplan.area() / 1e6,
              d.tree.sinks().size(), d.pairs.size());

  const core::Objective objective(d, timer);
  const core::VariationReport before = objective.evaluate(d, timer);

  std::vector<Bucket> buckets = {
      {"local      (< 300um)", 0.0, 300.0},
      {"mid   (300um - 1mm) ", 300.0, 1000.0},
      {"cross-block (>= 1mm)", 1000.0, 1e18},
  };
  fillBuckets(d, before, &buckets);
  std::printf("\nvariation by launch-capture separation (before):\n");
  for (const Bucket& b : buckets)
    std::printf("  %s: %4zu pairs, sum V = %7.0f ps (%.0f%% of total), "
                "avg %.1f ps/pair\n",
                b.label, b.count, b.sum_v,
                100.0 * b.sum_v / before.sum_variation_ps,
                b.count ? b.sum_v / static_cast<double>(b.count) : 0.0);

  // Run the full flow (analytical predictor keeps this example fast; see
  // appcore_cls1.cpp for the trained-model variant).
  core::FlowOptions fopts;
  fopts.local.max_iterations = 10;
  const core::Flow flow(tech, lut, fopts);
  const core::FlowResult fr =
      flow.run(d, core::FlowMode::kGlobalLocal, nullptr);
  const core::VariationReport after = objective.evaluate(d, timer);

  std::printf("\nglobal-local: sum variation %.0f -> %.0f ps (%.1f%%), "
              "%zu arcs rebuilt, %zu local moves\n",
              fr.before.sum_variation_ps, fr.after.sum_variation_ps,
              100.0 * (1.0 - fr.after.sum_variation_ps /
                                 fr.before.sum_variation_ps),
              fr.global.arcs_changed, fr.local.history.size());

  fillBuckets(d, after, &buckets);
  std::printf("\nvariation by separation (after):\n");
  for (const Bucket& b : buckets)
    std::printf("  %s: %4zu pairs, sum V = %7.0f ps, avg %.1f ps/pair\n",
                b.label, b.count, b.sum_v,
                b.count ? b.sum_v / static_cast<double>(b.count) : 0.0);

  std::printf("\nskew per corner (before -> after):\n");
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    std::printf("  %s: %.0f -> %.0f ps\n",
                tech.corner(d.corners[ki]).name.c_str(),
                before.local_skew_ps[ki], after.local_skew_ps[ki]);
  return 0;
}
