// Long-lived optimization daemon: the serve subsystem behind a local TCP
// socket.
//
//   skewopt_served [--port N] [--workers N] [--queue N] [--cache N]
//                  [--warm-capacity N] [--log PATH|-] [--log-level LEVEL]
//
// Speaks the newline-delimited JSON protocol of docs/serving.md. Try it
// with netcat:
//
//   $ skewopt_served --port 7447 &
//   $ printf '%s\n' '{"cmd":"SUBMIT","spec":{"source":{"kind":"testgen",
//     "testcase":"CLS1v1","sinks":80,"seed":3},"mode":"local",
//     "options":{"local":{"max_iterations":4}}}}' | nc 127.0.0.1 7447
//   {"ok":true,"id":1,"hash":"...","state":"QUEUED"}
//
// SIGINT/SIGTERM drains gracefully: intake stops, queued and running jobs
// finish, then the process exits.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "obs/log.h"
#include "serve/server.h"

using namespace skewopt;

namespace {

std::atomic<bool> g_stop{false};

void onSignal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: skewopt_served [--port N] [--workers N] [--queue N] "
               "[--cache N] [--warm-capacity N] [--log PATH|-] "
               "[--log-level debug|info|warn|error]\n");
  return 2;
}

bool parseInt(const char* text, long min, long max, long* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < min || v > max) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  serve::SchedulerOptions sched_opts;
  serve::TcpServerOptions tcp_opts;
  obs::Logger::Options log_opts;
  bool log_requested = false;
  bool log_level_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "skewopt_served: missing value for %s\n",
                   flag.c_str());
      return usage();
    }
    const std::string text = argv[++i];

    // String-valued flags first; everything else takes an integer.
    if (flag == "--log") {
      log_requested = true;
      if (text != "-") log_opts.path = text;  // "-" = stderr
      continue;
    }
    if (flag == "--log-level") {
      log_requested = true;
      log_level_set = true;
      if (!obs::parseLogLevel(text, &log_opts.level)) {
        std::fprintf(stderr, "skewopt_served: bad log level '%s'\n",
                     text.c_str());
        return usage();
      }
      continue;
    }

    long value = 0;
    if (!parseInt(text.c_str(), 0, 1 << 20, &value)) {
      std::fprintf(stderr, "skewopt_served: bad value for %s\n", flag.c_str());
      return usage();
    }
    if (flag == "--port") {
      if (value > 65535) {
        std::fprintf(stderr, "skewopt_served: port out of range\n");
        return usage();
      }
      tcp_opts.port = static_cast<int>(value);
    } else if (flag == "--workers") {
      sched_opts.workers = static_cast<std::size_t>(value);
    } else if (flag == "--queue") {
      sched_opts.queue_capacity = static_cast<std::size_t>(value);
    } else if (flag == "--cache") {
      sched_opts.cache_capacity = static_cast<std::size_t>(value);
    } else if (flag == "--warm-capacity") {
      sched_opts.warm_capacity = static_cast<std::size_t>(value);
    } else {
      std::fprintf(stderr, "skewopt_served: unknown flag %s\n", flag.c_str());
      return usage();
    }
  }

  if (log_requested) {
    // --log without --log-level means info; --log-level alone logs to
    // stderr.
    if (!log_level_set) log_opts.level = obs::LogLevel::kInfo;
    std::string err;
    if (!obs::Logger::global().configure(log_opts, &err)) {
      std::fprintf(stderr, "skewopt_served: cannot open log: %s\n",
                   err.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);
  serve::Scheduler sched(tech, lut, sched_opts);

  try {
    serve::TcpServer server(sched, tcp_opts);
    std::printf("skewopt_served: listening on %s:%d (%zu workers, queue %zu, "
                "cache %zu)\n",
                tcp_opts.host.c_str(), server.port(), sched_opts.workers,
                sched_opts.queue_capacity, sched_opts.cache_capacity);
    std::fflush(stdout);
    while (!g_stop.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::printf("skewopt_served: draining...\n");
    std::fflush(stdout);
    server.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "skewopt_served: %s\n", e.what());
    return 1;
  }
  sched.drain();
  const serve::SchedulerStats s = sched.stats();
  std::printf("skewopt_served: done=%zu failed=%zu cancelled=%zu "
              "cache_hits=%zu\n",
              s.done, s.failed, s.cancelled, s.cache.hits);
  return 0;
}
