// Application-processor scenario (paper's CLS1 class): four interface
// logic module blocks, clustered register banks, local plus cross-block
// datapaths. This example runs the complete paper flow, including the
// trained per-corner delta-latency models for the local stage, and prints
// a per-stage breakdown of where the skew-variation reduction comes from.
//
//   ./build/examples/appcore_cls1 [--sinks N] [--seed S]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/flow.h"
#include "testgen/testgen.h"

using namespace skewopt;

int main(int argc, char** argv) {
  std::size_t sinks = 160;
  std::uint64_t seed = 1;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--sinks") == 0)
      sinks = static_cast<std::size_t>(std::stoul(argv[i + 1]));
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = std::stoull(argv[i + 1]);
  }

  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);
  const sta::Timer timer(tech);

  // The CLS1 corners are c0/c1 (setup) and c3 (hold) per the paper.
  testgen::TestcaseOptions topt;
  topt.sinks = sinks;
  topt.seed = seed;
  topt.max_pairs = 150;
  network::Design d = testgen::makeCls1(tech, "v1", topt);
  std::printf("%s: %zu FFs in four 650x650um ILM blocks, %zu sink pairs, "
              "%zu clock buffers\n",
              d.name.c_str(), d.tree.sinks().size(), d.pairs.size(),
              d.tree.numBuffers());

  // Train the per-corner latency-change models once (a per-technology,
  // reusable step in the paper).
  std::printf("training HSM delta-latency models per corner...\n");
  core::DeltaLatencyModel model;
  core::TrainOptions train;
  train.cases = 30;
  train.moves_per_case = 30;
  model.train(tech, d.corners, train);

  const core::Objective objective(d, timer);
  core::VariationReport report = objective.evaluate(d, timer);
  std::printf("\nbaseline: sum variation %.0f ps, local skews",
              report.sum_variation_ps);
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    std::printf(" %s=%.0fps", tech.corner(d.corners[ki]).name.c_str(),
                report.local_skew_ps[ki]);
  std::printf("\n");

  // Stage 1: global LP-guided optimization.
  core::GlobalOptimizer gopt(tech, lut);
  const core::GlobalResult gr = gopt.run(d, objective);
  report = objective.evaluate(d, timer);
  std::printf("\nafter global (LP %zux%zu, U*=%.0fps, %zu arcs rebuilt, "
              "warm-start %d/%d):\n",
              gr.lp_rows, gr.lp_vars, gr.chosen_u_ps, gr.arcs_changed,
              gr.lp_warm_hits, gr.lp_warm_hits + gr.lp_warm_misses);
  for (const core::LpSolveStats& st : gr.lp_solves)
    std::printf("  LP %s U=%-7.0f %4d iters, %2d refactor, %s, "
                "solve %.1f ms, realize %.1f ms\n",
                st.u_ps == 0.0 ? "min-V" : "sweep", st.u_ps, st.iterations,
                st.refactorizations, st.warm_started ? "warm" : "cold",
                st.solve_ms, st.realize_ms);
  std::printf("  sum variation %.0f ps (%.1f%% cumulative reduction)\n",
              report.sum_variation_ps,
              100.0 * (1.0 - report.sum_variation_ps / gr.sum_before_ps));

  // Stage 2: ML-guided local optimization.
  core::LocalOptions lopts;
  lopts.max_iterations = 12;
  core::LocalOptimizer lopt(tech, lopts);
  const core::LocalResult lr = lopt.run(d, objective, &model);
  report = objective.evaluate(d, timer);
  std::printf("\nafter local (%zu committed moves", lr.history.size());
  std::size_t by_type[3] = {0, 0, 0};
  for (const core::LocalIteration& it : lr.history)
    ++by_type[static_cast<std::size_t>(it.type)];
  std::printf(": %zu type-I, %zu type-II, %zu type-III):\n", by_type[0],
              by_type[1], by_type[2]);
  std::printf("  sum variation %.0f ps (%.1f%% cumulative reduction)\n",
              report.sum_variation_ps,
              100.0 * (1.0 - report.sum_variation_ps / gr.sum_before_ps));
  std::printf("  local skews now");
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    std::printf(" %s=%.0fps", tech.corner(d.corners[ki]).name.c_str(),
                report.local_skew_ps[ki]);
  std::printf("\n");

  std::string err;
  if (!d.tree.validate(&err)) {
    std::printf("TREE INVALID: %s\n", err.c_str());
    return 1;
  }
  std::printf("\nfinal tree valid; %zu clock cells, %.3f mW, %.0f um2\n",
              d.tree.numBuffers(), sta::clockTreePowerMw(d, d.corners[0]),
              sta::clockCellAreaUm2(d));
  return 0;
}
