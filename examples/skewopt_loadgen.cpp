// Load generator for the sharded serving cluster (src/cluster).
//
// Drives a mixed workload — cache-hot repeats, cache-cold one-offs, DELTA
// re-optimizations, cancellations, and deadline-missed jobs — against an
// in-process ClusterFrontend or a self-hosted TCP cluster endpoint, in
// closed-loop (each client waits for its job before submitting the next)
// or paced mode (--rate bounds the offered load).
//
// Reports client-observed p50/p95/p99 latency, throughput, and per-shard
// cache/warm hit rates, and emits BENCH_loadgen.json for dashboards and
// the CI loadgen-smoke gate. With --verify the same deterministic job
// plan is replayed against a single-shard frontend and the result digests
// are compared: sharding must not change a single bit of any result.
//
//   skewopt_loadgen --jobs 100000 --shards 4 --clients 8 --verify
//   skewopt_loadgen --jobs 2000 --shards 3 --transport tcp
//   skewopt_loadgen --jobs 50000 --rate 2000        # paced at 2k jobs/s
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/frontend.h"
#include "obs/log.h"
#include "cluster/protocol.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace skewopt;
namespace json = serve::json;

struct Options {
  std::size_t jobs = 100000;
  std::size_t shards = 4;
  std::size_t workers = 2;     // per shard
  std::size_t clients = 8;
  std::size_t hot_pool = 32;   // distinct cache-hot specs
  std::size_t sinks = 30;
  std::uint64_t seed = 1;
  double rate = 0.0;           // jobs/s; 0 = closed loop
  bool tcp = false;
  bool verify = false;
  std::string log_path;        // empty = logging off
};

void usage() {
  std::fprintf(
      stderr,
      "usage: skewopt_loadgen [--jobs N] [--shards N] [--workers N]\n"
      "                       [--clients N] [--hot-pool N] [--sinks N]\n"
      "                       [--seed S] [--rate JOBS_PER_S]\n"
      "                       [--transport inproc|tcp] [--verify]\n"
      "                       [--log FILE.jsonl]\n");
}

bool parseArgs(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](std::size_t* out) {
      if (++i >= argc) return false;
      *out = static_cast<std::size_t>(std::strtoull(argv[i], nullptr, 10));
      return true;
    };
    if (a == "--jobs") {
      if (!next(&o->jobs)) return false;
    } else if (a == "--shards") {
      if (!next(&o->shards)) return false;
    } else if (a == "--workers") {
      if (!next(&o->workers)) return false;
    } else if (a == "--clients") {
      if (!next(&o->clients)) return false;
    } else if (a == "--hot-pool") {
      if (!next(&o->hot_pool)) return false;
    } else if (a == "--sinks") {
      if (!next(&o->sinks)) return false;
    } else if (a == "--seed") {
      std::size_t s;
      if (!next(&s)) return false;
      o->seed = s;
    } else if (a == "--rate") {
      if (++i >= argc) return false;
      o->rate = std::strtod(argv[i], nullptr);
    } else if (a == "--transport") {
      if (++i >= argc) return false;
      const std::string t = argv[i];
      if (t == "tcp")
        o->tcp = true;
      else if (t != "inproc")
        return false;
    } else if (a == "--verify") {
      o->verify = true;
    } else if (a == "--log") {
      if (++i >= argc) return false;
      o->log_path = argv[i];
    } else {
      usage();
      return false;
    }
  }
  return o->jobs > 0 && o->clients > 0 && o->shards > 0 && o->hot_pool > 0;
}

// ---------------------------------------------------------------------------
// Deterministic job plan

struct PlanEntry {
  enum Kind { kHot, kCold, kDelta, kCancel, kDeadline } kind = kHot;
  std::uint64_t seed = 0;       // design seed (hot pool or unique cold)
  std::size_t base_index = 0;   // kDelta: plan index of the base job
  int variant = 0;              // kDelta: which edit to apply
};

/// The workload mix (~85% hot / 5% cold / 5% delta / 3% cancel /
/// 2% deadline), generated deterministically from the seed so --verify can
/// replay the identical sequence against a single shard.
std::vector<PlanEntry> makePlan(const Options& o) {
  std::vector<PlanEntry> plan(o.jobs);
  std::mt19937_64 rng(o.seed);
  std::vector<std::size_t> hot_indices;
  for (std::size_t i = 0; i < o.jobs; ++i) {
    PlanEntry& e = plan[i];
    const std::uint64_t roll = rng() % 100;
    if (roll < 85 || hot_indices.empty()) {
      e.kind = PlanEntry::kHot;
      e.seed = 1000 + rng() % o.hot_pool;
      hot_indices.push_back(i);
    } else if (roll < 90) {
      e.kind = PlanEntry::kCold;
      e.seed = 1000000 + i;  // unique: always a cache miss
    } else if (roll < 95) {
      e.kind = PlanEntry::kDelta;
      e.base_index = hot_indices[rng() % hot_indices.size()];
      e.seed = plan[e.base_index].seed;
      e.variant = static_cast<int>(rng() % 3);
    } else if (roll < 98) {
      e.kind = PlanEntry::kCancel;
      e.seed = 1000 + rng() % o.hot_pool;
    } else {
      e.kind = PlanEntry::kDeadline;
      e.seed = 1000 + rng() % o.hot_pool;
    }
  }
  return plan;
}

serve::JobSpec baseSpec(const Options& o, std::uint64_t seed) {
  serve::JobSpec spec;
  spec.source.kind = serve::DesignSource::Kind::kTestgen;
  spec.source.testcase = "CLS1v1";
  spec.source.sinks = o.sinks;
  spec.source.max_pairs = o.sinks;
  spec.source.seed = seed;
  spec.mode = core::FlowMode::kLocal;
  spec.options.local.max_iterations = 1;
  return spec;
}

serve::DeltaEdits deltaEdits(int variant) {
  serve::DeltaEdits edits;
  edits.has_u_sweep = true;
  edits.u_sweep = {0.05, 0.1 + 0.05 * variant};
  return edits;
}

/// The spec a plan entry submits (DELTA entries: base spec + edits — the
/// same merge Scheduler::submitDelta performs).
serve::JobSpec specFor(const Options& o, const std::vector<PlanEntry>& plan,
                       std::size_t i) {
  const PlanEntry& e = plan[i];
  serve::JobSpec spec = baseSpec(o, e.seed);
  if (e.kind == PlanEntry::kDelta)
    spec = serve::applyDeltaEdits(baseSpec(o, plan[e.base_index].seed),
                                  deltaEdits(e.variant));
  if (e.kind == PlanEntry::kDeadline) spec.deadline_ms = 0.001;
  return spec;
}

// ---------------------------------------------------------------------------
// Result digests (the bit-identity currency)

/// Canonical digest of a result's optimization outcome: the resultToJson
/// dump minus wall-clock timings (stage_ms) and solver-effort fields
/// (lp_solves, lp_warm_hits) that legitimately differ between a cold run
/// and a warm-started replay of the same spec.
std::string digestResult(const json::Value& result) {
  json::Value out = json::Value::object();
  for (const auto& [key, value] : result.members()) {
    if (key == "stage_ms") continue;
    if (key == "global") {
      json::Value g = json::Value::object();
      for (const auto& [gk, gv] : value.members())
        if (gk != "lp_solves" && gk != "lp_warm_hits") g.set(gk, gv);
      out.set(key, std::move(g));
      continue;
    }
    out.set(key, value);
  }
  return json::dump(out);
}

/// hash-hex -> digest, collected as jobs complete. Two jobs with the same
/// spec hash must produce the same digest, within a run and across runs.
class DigestMap {
 public:
  /// Returns false on a digest conflict for an already-seen hash.
  bool record(const std::string& hash, const std::string& digest) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto [it, fresh] = map_.emplace(hash, digest);
    return fresh || it->second == digest;
  }
  std::map<std::string, std::string> take() {
    std::lock_guard<std::mutex> lk(mu_);
    return std::move(map_);
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::string> map_;
};

// ---------------------------------------------------------------------------
// Workload runner

struct RunStats {
  std::vector<double> latencies_ms;  // sorted after the run
  std::size_t done = 0, failed = 0, cancelled = 0, rejected = 0;
  std::size_t digest_conflicts = 0;
  double wall_s = 0.0;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[i];
}

using GidTable = std::vector<std::atomic<std::uint64_t>>;

/// One client's view of the cluster: submit a plan entry, wait for the
/// outcome, digest DONE results. Implemented over the native frontend and
/// over the TCP wire so both transports carry real load.
class ClientBase {
 public:
  virtual ~ClientBase() = default;
  struct Outcome {
    std::string state;  // DONE / FAILED / CANCELLED / REJECTED
    double latency_ms = 0.0;
    bool digest_ok = true;
  };
  virtual Outcome runEntry(std::size_t index) = 0;
};

class InprocClient : public ClientBase {
 public:
  InprocClient(cluster::ClusterFrontend& fe, const Options& o,
               const std::vector<PlanEntry>& plan, GidTable& gids,
               DigestMap& digests)
      : fe_(fe), o_(o), plan_(plan), gids_(gids), digests_(digests) {}

  Outcome runEntry(std::size_t index) override {
    const PlanEntry& e = plan_[index];
    const auto t0 = std::chrono::steady_clock::now();
    cluster::ClusterFrontend::Submitted sub;
    if (e.kind == PlanEntry::kDelta) {
      // Base-affine DELTA when the base is still in its shard's registry;
      // a pruned/unknown base degrades to a locally merged plain submit —
      // identical spec, identical result, only the shard placement moves.
      const std::uint64_t base_gid =
          gids_[e.base_index].load(std::memory_order_acquire);
      if (base_gid != 0) {
        try {
          sub = fe_.submitDelta(base_gid, deltaEdits(e.variant), true);
        } catch (const std::out_of_range&) {
        }
      }
    }
    if (!sub.job) sub = fe_.submit(specFor(o_, plan_, index), true);
    Outcome out;
    if (!sub.job) {
      out.state = "REJECTED";
      return out;
    }
    gids_[index].store(sub.id, std::memory_order_release);
    if (e.kind == PlanEntry::kCancel) fe_.cancel(sub.id);
    const serve::JobStatus s = fe_.waitTerminal(sub.id);
    out.latency_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    out.state = serve::jobStateName(s.state);
    if (s.state == serve::JobState::kDone)
      out.digest_ok = digests_.record(
          serve::hashHex(sub.job->hash),
          digestResult(serve::resultToJson(fe_.result(sub.id))));
    return out;
  }

 private:
  cluster::ClusterFrontend& fe_;
  const Options& o_;
  const std::vector<PlanEntry>& plan_;
  GidTable& gids_;
  DigestMap& digests_;
};

class TcpLoadClient : public ClientBase {
 public:
  TcpLoadClient(int port, const Options& o, const std::vector<PlanEntry>& plan,
                GidTable& gids, DigestMap& digests)
      : conn_("127.0.0.1", port),
        o_(o),
        plan_(plan),
        gids_(gids),
        digests_(digests) {}

  Outcome runEntry(std::size_t index) override {
    const PlanEntry& e = plan_[index];
    const auto t0 = std::chrono::steady_clock::now();

    json::Value req = json::Value::object();
    req.set("cmd", "SUBMIT");
    req.set("spec", serve::specToJson(specFor(o_, plan_, index)));
    req.set("block", true);
    const json::Value submitted = conn_.call(req);
    Outcome out;
    if (!submitted.boolean("ok", false)) {
      out.state = "REJECTED";
      return out;
    }
    const std::uint64_t id =
        static_cast<std::uint64_t>(submitted.num("id", 0));
    const std::string hash = submitted.str("hash", "");
    gids_[index].store(id, std::memory_order_release);

    if (e.kind == PlanEntry::kCancel) {
      json::Value c = json::Value::object();
      c.set("cmd", "CANCEL");
      c.set("id", id);
      conn_.call(c);
    }

    json::Value r = json::Value::object();
    r.set("cmd", "RESULT");
    r.set("id", id);
    r.set("wait", true);
    const json::Value reply = conn_.call(r);
    out.latency_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    out.state = reply.str("state", "FAILED");
    if (reply.boolean("ok", false)) {
      if (const json::Value* result = reply.find("result"))
        out.digest_ok = digests_.record(hash, digestResult(*result));
    }
    return out;
  }

 private:
  serve::TcpClient conn_;
  const Options& o_;
  const std::vector<PlanEntry>& plan_;
  GidTable& gids_;
  DigestMap& digests_;
};

/// Runs the plan with `clients` threads claiming indices in order. Closed
/// loop: each thread completes a job before claiming another. With --rate,
/// each thread additionally sleeps clients/rate between claims, bounding
/// the offered load (latencies then include queueing under overload).
RunStats runPlan(
    const Options& o, const std::vector<PlanEntry>& plan,
    const std::function<std::unique_ptr<ClientBase>(GidTable&)>& make) {
  GidTable gids(plan.size());
  for (auto& g : gids) g.store(0);
  std::atomic<std::size_t> next{0};
  std::mutex agg_mu;
  RunStats agg;
  const double pace_s =
      o.rate > 0 ? static_cast<double>(o.clients) / o.rate : 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(o.clients);
  for (std::size_t c = 0; c < o.clients; ++c) {
    threads.emplace_back([&] {
      std::unique_ptr<ClientBase> client = make(gids);
      RunStats local;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= plan.size()) break;
        const ClientBase::Outcome out = client->runEntry(i);
        if (out.state == "REJECTED") {
          ++local.rejected;
        } else {
          local.latencies_ms.push_back(out.latency_ms);
          if (out.state == "DONE")
            ++local.done;
          else if (out.state == "CANCELLED")
            ++local.cancelled;
          else
            ++local.failed;
        }
        if (!out.digest_ok) ++local.digest_conflicts;
        if (pace_s > 0)
          std::this_thread::sleep_for(std::chrono::duration<double>(pace_s));
      }
      std::lock_guard<std::mutex> lk(agg_mu);
      agg.done += local.done;
      agg.failed += local.failed;
      agg.cancelled += local.cancelled;
      agg.rejected += local.rejected;
      agg.digest_conflicts += local.digest_conflicts;
      agg.latencies_ms.insert(agg.latencies_ms.end(),
                              local.latencies_ms.begin(),
                              local.latencies_ms.end());
    });
  }
  for (std::thread& t : threads) t.join();
  agg.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::sort(agg.latencies_ms.begin(), agg.latencies_ms.end());
  return agg;
}

cluster::ClusterOptions clusterOptions(const Options& o, std::size_t shards) {
  cluster::ClusterOptions copts;
  copts.shards = shards;
  copts.shard.workers = o.workers;
  copts.shard.queue_capacity = 256;
  copts.shard.cache_capacity = 512;
  copts.shard.warm_capacity = 128;
  // Sustained load needs the registry bounded (see SchedulerOptions);
  // large enough that DELTA bases usually survive until referenced.
  copts.shard.terminal_retention = 4096;
  return copts;
}

double rate(std::size_t hits, std::size_t misses) {
  const double total = static_cast<double>(hits + misses);
  return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parseArgs(argc, argv, &o)) {
    usage();
    return 2;
  }

  if (!o.log_path.empty()) {
    obs::Logger::Options log_opts;
    log_opts.level = obs::LogLevel::kInfo;
    log_opts.path = o.log_path;
    std::string err;
    if (!obs::Logger::global().configure(log_opts, &err)) {
      std::fprintf(stderr, "loadgen: cannot open log: %s\n", err.c_str());
      return 2;
    }
  }

  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);
  const std::vector<PlanEntry> plan = makePlan(o);

  std::printf("loadgen: %zu jobs, %zu shards x %zu workers, %zu clients, "
              "%s, %s loop\n",
              o.jobs, o.shards, o.workers, o.clients,
              o.tcp ? "tcp" : "inproc", o.rate > 0 ? "paced" : "closed");

  bench::JsonEmitter emitter("loadgen");
  DigestMap digests;
  RunStats stats;
  cluster::ClusterStats cluster_stats;
  {
    cluster::ClusterFrontend fe(tech, lut, clusterOptions(o, o.shards));
    std::unique_ptr<serve::TcpServer> server;
    if (o.tcp)
      server =
          std::make_unique<serve::TcpServer>(cluster::clusterLineHandler(fe));

    stats = runPlan(o, plan, [&](GidTable& gids)
                        -> std::unique_ptr<ClientBase> {
      if (o.tcp)
        return std::make_unique<TcpLoadClient>(server->port(), o, plan, gids,
                                               digests);
      return std::make_unique<InprocClient>(fe, o, plan, gids, digests);
    });
    cluster_stats = fe.stats();
    if (server) server->stop();
    fe.drain();
  }

  const double throughput =
      stats.wall_s > 0 ? static_cast<double>(plan.size()) / stats.wall_s : 0;
  const double p50 = percentile(stats.latencies_ms, 0.50);
  const double p95 = percentile(stats.latencies_ms, 0.95);
  const double p99 = percentile(stats.latencies_ms, 0.99);

  std::printf("outcomes: done=%zu failed=%zu cancelled=%zu rejected=%zu\n",
              stats.done, stats.failed, stats.cancelled, stats.rejected);
  std::printf("latency:  p50=%.2fms p95=%.2fms p99=%.2fms\n", p50, p95, p99);
  std::printf("rate:     %.0f jobs/s over %.2fs\n", throughput, stats.wall_s);

  emitter.record("mixed", "jobs", static_cast<double>(plan.size()),
                 stats.wall_s * 1000.0);
  emitter.record("mixed", "done", static_cast<double>(stats.done));
  emitter.record("mixed", "failed", static_cast<double>(stats.failed));
  emitter.record("mixed", "cancelled", static_cast<double>(stats.cancelled));
  emitter.record("mixed", "rejected", static_cast<double>(stats.rejected));
  emitter.record("mixed", "p50_ms", p50);
  emitter.record("mixed", "p95_ms", p95);
  emitter.record("mixed", "p99_ms", p99);
  emitter.record("mixed", "throughput_jobs_per_s", throughput);

  for (std::size_t i = 0; i < cluster_stats.shards.size(); ++i) {
    const serve::SchedulerStats& s = cluster_stats.shards[i];
    const std::string name = "shard" + std::to_string(i);
    std::printf("%s: submitted=%zu cache_hit=%.2f warm_hit=%.2f depth=%zu\n",
                name.c_str(), s.submitted, rate(s.cache.hits, s.cache.misses),
                rate(s.warm.hits, s.warm.misses), s.queue_depth);
    emitter.record(name, "submitted", static_cast<double>(s.submitted));
    emitter.record(name, "cache_hit_rate", rate(s.cache.hits, s.cache.misses));
    emitter.record(name, "warm_hit_rate", rate(s.warm.hits, s.warm.misses));
  }

  int exit_code = 0;
  if (stats.digest_conflicts > 0) {
    std::fprintf(stderr, "loadgen: %zu digest conflicts within the run\n",
                 stats.digest_conflicts);
    exit_code = 1;
  }

  if (o.verify) {
    // Replay the identical plan on one shard, in-process, and compare
    // digests per spec hash: same spec -> bit-identical result, sharded
    // or not, cached or cold, warm or not.
    std::printf("verify:   replaying %zu jobs on 1 shard...\n", plan.size());
    DigestMap verify_digests;
    Options vo = o;
    vo.tcp = false;
    RunStats vstats;
    {
      cluster::ClusterFrontend single(tech, lut, clusterOptions(o, 1));
      vstats = runPlan(vo, plan, [&](GidTable& gids)
                           -> std::unique_ptr<ClientBase> {
        return std::make_unique<InprocClient>(single, vo, plan, gids,
                                              verify_digests);
      });
      single.drain();
    }
    const std::map<std::string, std::string> sharded = digests.take();
    const std::map<std::string, std::string> solo = verify_digests.take();
    std::size_t compared = 0, mismatched = 0;
    for (const auto& [hash, digest] : sharded) {
      const auto it = solo.find(hash);
      if (it == solo.end()) continue;
      ++compared;
      if (it->second != digest) {
        ++mismatched;
        std::fprintf(stderr, "verify: result mismatch for spec %s\n",
                     hash.c_str());
      }
    }
    std::printf("verify:   %zu result digests compared, %zu mismatched\n",
                compared, mismatched);
    emitter.record("verify", "digests_compared",
                   static_cast<double>(compared));
    emitter.record("verify", "digest_mismatches",
                   static_cast<double>(mismatched));
    if (mismatched > 0 || vstats.digest_conflicts > 0 || compared == 0)
      exit_code = 1;
  }

  emitter.write();
  return exit_code;
}
