// API tour: build a clock network by hand (no generator, no CTS), time it
// across corners, inspect its arcs, apply manual edit operations, and run
// a what-if analysis with the delta-latency predictor — the building
// blocks a downstream user composes into their own flows.
//
//   ./build/examples/custom_tree
#include <cstdio>

#include "core/predictor.h"
#include "eco/eco.h"
#include "sta/timer.h"
#include "testgen/testgen.h"

using namespace skewopt;

int main() {
  const tech::TechModel tech = tech::TechModel::make28nm();
  const sta::Timer timer(tech);

  // --- 1. Build a small H-shaped tree by hand -----------------------------
  network::Design d("hand_built", &tech, {500, 0});
  d.corners = {0, 1, 2};
  d.floorplan = geom::Region{{geom::Rect{0, 0, 1000, 600}}};

  const int trunk = d.tree.addBuffer(d.tree.root(), {500, 150}, 3, "trunk");
  const int left = d.tree.addBuffer(trunk, {250, 300}, 2, "left");
  const int right = d.tree.addBuffer(trunk, {750, 300}, 2, "right");
  int ffs[6];
  ffs[0] = d.tree.addSink(left, {150, 450}, "ff_l0");
  ffs[1] = d.tree.addSink(left, {250, 470}, "ff_l1");
  ffs[2] = d.tree.addSink(left, {350, 450}, "ff_l2");
  ffs[3] = d.tree.addSink(right, {650, 450}, "ff_r0");
  ffs[4] = d.tree.addSink(right, {750, 470}, "ff_r1");
  ffs[5] = d.tree.addSink(right, {850, 450}, "ff_r2");
  d.routing.rebuildAll(d.tree);

  // Sequentially adjacent pairs: a shift path around the H plus one
  // cross-branch datapath.
  for (int i = 0; i < 5; ++i) d.pairs.push_back({ffs[i], ffs[i + 1], 1.0});
  d.pairs.push_back({ffs[0], ffs[5], 2.0});

  // --- 2. Multi-corner timing ---------------------------------------------
  std::printf("latency per sink (ps):\n        ");
  for (const std::size_t k : d.corners)
    std::printf("%8s", tech.corner(k).name.c_str());
  std::printf("\n");
  const std::vector<sta::CornerTiming> timing = timer.analyzeDesign(d);
  for (const int s : d.tree.sinks()) {
    std::printf("  %-6s", d.tree.node(s).name.c_str());
    for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
      std::printf("%8.1f", timing[ki].arrival[static_cast<std::size_t>(s)]);
    std::printf("\n");
  }

  // --- 3. Arc decomposition ------------------------------------------------
  std::printf("\narcs (unbranched segments):\n");
  for (const network::Arc& a : d.tree.extractArcs()) {
    std::printf("  %s -> %s: direct %.0f um, %zu interior buffers, "
                "delay@c0 %.1f ps\n",
                d.tree.node(a.src).name.c_str(),
                d.tree.node(a.dst).name.c_str(), a.direct_len_um,
                a.interior.size(),
                timing[0].arrival[static_cast<std::size_t>(a.dst)] -
                    timing[0].arrival[static_cast<std::size_t>(a.src)]);
  }

  // --- 4. Objective & what-if with the predictor ---------------------------
  const core::Objective objective(d, timer);
  const core::VariationReport before = objective.evaluate(d, timer);
  std::printf("\nsum of normalized skew variations: %.1f ps\n",
              before.sum_variation_ps);

  core::MovePredictor predictor(d, timer, objective, nullptr);
  std::printf("\nwhat-if: candidate moves on buffer 'left', predicted "
              "objective change:\n");
  for (const core::Move& m : core::enumerateMoves(d, left)) {
    const double delta = predictor.predictedVariationDelta(m);
    if (std::abs(delta) < 0.3) continue;
    std::printf("  %-40s %+7.1f ps\n", m.describe(d).c_str(), delta);
  }

  // --- 5. Apply the best move for real and verify --------------------------
  const std::vector<core::Move> moves = core::enumerateAllMoves(d);
  core::Move best_move = moves.front();
  double best_pred = 0.0;
  for (const core::Move& m : moves) {
    const double p = predictor.predictedVariationDelta(m);
    if (p < best_pred) {
      best_pred = p;
      best_move = m;
    }
  }
  if (best_pred < 0.0) {
    core::applyMove(d, best_move);
    const core::VariationReport after = objective.evaluate(d, timer);
    std::printf("\napplied %s: predicted %+.1f ps, realized %+.1f ps "
                "(golden)\n",
                best_move.describe(d).c_str(), best_pred,
                after.sum_variation_ps - before.sum_variation_ps);
  } else {
    std::printf("\nno predicted-improving move on this hand-built tree\n");
  }

  std::string err;
  std::printf("tree %s\n", d.tree.validate(&err) ? "valid" : err.c_str());
  return 0;
}
