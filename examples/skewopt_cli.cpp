// Command-line driver for the library: generate a testcase, report its
// multi-corner skew state, optimize it, and persist designs to disk.
//
//   skewopt_cli gen --testcase CLS1v1 --sinks 120 --pairs 120 --seed 1
//                   --out design.skv
//   skewopt_cli report design.skv [--detailed]
//   skewopt_cli diff before.skv after.skv
//   skewopt_cli optimize design.skv --flow global-local [--train]
//                   --out optimized.skv
//
// The .skv format round-trips the exact timing state (see network/io.h).
//
// Argument handling is strict: unknown flags, missing flag values, bad
// numeric values, and unreadable files all produce a diagnostic on stderr
// and a non-zero exit code instead of an abort or a silently ignored flag.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "check/check.h"
#include "core/flow.h"
#include "network/eco_export.h"
#include "network/io.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sta/report.h"
#include "testgen/testgen.h"

using namespace skewopt;

namespace {

/// Thrown for malformed invocations; main() prints the message plus usage
/// and exits 2 (errors from the library itself exit 1).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses `--flag value` / `--flag` pairs starting at argv[start].
/// `valued` flags require a following value; `boolean` flags take none.
/// Anything else — unknown flags, stray positionals, a valued flag at the
/// end of the line — is rejected.
std::map<std::string, std::string> parseFlags(
    int argc, char** argv, int start, const std::set<std::string>& valued,
    const std::set<std::string>& boolean) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw UsageError("unexpected argument '" + arg + "'");
    const std::string key = arg.substr(2);
    if (boolean.count(key)) {
      // Move-assigned: GCC 12's -Wrestrict misdiagnoses the char* copy
      // path of operator=(const char*) under heavy inlining.
      flags[key] = std::string("1");
    } else if (valued.count(key)) {
      if (i + 1 >= argc)
        throw UsageError("flag '--" + key + "' requires a value");
      flags[key] = argv[++i];
    } else {
      throw UsageError("unknown flag '--" + key + "'");
    }
  }
  return flags;
}

/// Strict unsigned decimal parse: the whole token must be digits and fit.
unsigned long parseCount(const std::map<std::string, std::string>& flags,
                         const std::string& key, unsigned long fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const std::string& text = it->second;
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (text.empty() || *end != '\0' || text[0] == '-' || errno == ERANGE)
    throw UsageError("flag '--" + key + "' expects a non-negative integer, got '" +
                     text + "'");
  return v;
}

/// Configures the process-wide structured logger from `--log PATH|-` (the
/// JSON-lines sink; "-" = stderr) and `--log-level`. Either flag alone
/// works: --log defaults the level to info, --log-level alone logs to
/// stderr.
void configureLogging(const std::map<std::string, std::string>& flags) {
  const auto log_it = flags.find("log");
  const auto lvl_it = flags.find("log-level");
  if (log_it == flags.end() && lvl_it == flags.end()) return;
  obs::Logger::Options o;
  o.level = obs::LogLevel::kInfo;
  if (lvl_it != flags.end() && !obs::parseLogLevel(lvl_it->second, &o.level))
    throw UsageError(
        "flag '--log-level' expects debug|info|warn|error|off, got '" +
        lvl_it->second + "'");
  if (log_it != flags.end() && log_it->second != "-") o.path = log_it->second;
  std::string err;
  if (!obs::Logger::global().configure(o, &err))
    throw UsageError("flag '--log': " + err);
}

/// Resolves `--check` (plus the SKEWOPT_CHECK_LEVEL override) for a
/// command; `fallback` is the command's default gate level.
check::Level parseCheckFlag(const std::map<std::string, std::string>& flags,
                            check::Level fallback) {
  check::Level lvl = fallback;
  const auto it = flags.find("check");
  if (it != flags.end() && !check::parseLevel(it->second, &lvl))
    throw UsageError("flag '--check' expects off|cheap|deep, got '" +
                     it->second + "'");
  return check::effectiveLevel(lvl);
}

/// Scopes the `--trace out.json` / `--metrics out.prom` outputs of one
/// command. Paths are validated for writability up front (a bad path is a
/// usage error — diagnostic + exit 2 — before any optimization work);
/// the facilities are enabled only when requested, and finish() exports
/// after the command's work is done.
class ObsOutputs {
 public:
  explicit ObsOutputs(const std::map<std::string, std::string>& flags) {
    auto it = flags.find("trace");
    if (it != flags.end()) trace_path_ = it->second;
    it = flags.find("metrics");
    if (it != flags.end()) metrics_path_ = it->second;
    checkWritable(trace_path_, "trace");
    checkWritable(metrics_path_, "metrics");
    if (!metrics_path_.empty()) obs::setMetricsEnabled(true);
    if (!trace_path_.empty()) {
      since_ns_ = obs::nowNs();
      obs::Tracer::global().start();
    }
  }

  void finish() {
    if (!trace_path_.empty()) {
      obs::Tracer::global().stop();
      std::string err;
      if (!obs::Tracer::global().writeJsonFile(trace_path_, since_ns_, &err))
        throw std::runtime_error("cannot write trace: " + err);
      std::printf("wrote trace %s\n", trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      const std::string text =
          obs::prometheusText(obs::MetricsRegistry::global().snapshot());
      std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
      if (f == nullptr ||
          std::fwrite(text.data(), 1, text.size(), f) != text.size() ||
          std::fclose(f) != 0)
        throw std::runtime_error("cannot write metrics: " + metrics_path_);
      std::printf("wrote metrics %s\n", metrics_path_.c_str());
    }
  }

 private:
  static void checkWritable(const std::string& path, const char* flag) {
    if (path.empty()) return;
    // Open for append so an existing file is not truncated before the
    // command has produced anything; the export overwrites it later.
    std::FILE* f = std::fopen(path.c_str(), "a");
    if (f == nullptr)
      throw UsageError("flag '--" + std::string(flag) + "': cannot write '" +
                       path + "'");
    std::fclose(f);
  }

  std::string trace_path_;
  std::string metrics_path_;
  std::uint64_t since_ns_ = 0;
};

int usage() {
  std::fprintf(stderr,
      "usage:\n"
      "  skewopt_cli gen --testcase CLS1v1|CLS1v2|CLS2v1 [--sinks N]\n"
      "                  [--pairs N] [--seed S] --out FILE\n"
      "  skewopt_cli report FILE [--detailed] [--check off|cheap|deep]\n"
      "                  [--trace FILE.json] [--metrics FILE.prom]\n"
      "  skewopt_cli diff BEFORE AFTER       (emit ECO script)\n"
      "  skewopt_cli optimize FILE --flow global|local|global-local\n"
      "                  [--train] [--iterations N]\n"
      "                  [--check off|cheap|deep] --out FILE\n"
      "                  [--trace FILE.json] [--metrics FILE.prom]\n"
      "                  [--record FILE.json]\n"
      "\n"
      "--check runs the SKW design-invariant verifiers (see\n"
      "docs/static_analysis.md); SKEWOPT_CHECK_LEVEL overrides it.\n"
      "--trace exports a Chrome trace-event JSON (open in Perfetto);\n"
      "--metrics exports a Prometheus text snapshot (docs/observability.md);\n"
      "--record exports the flight-recorder JSON of the optimization run;\n"
      "--log FILE|- / --log-level enable JSON-lines structured logging\n"
      "(report and optimize; docs/observability.md \"Job telemetry\").\n");
  return 2;
}

void report(const tech::TechModel& tech, const network::Design& d) {
  const sta::Timer timer(tech);
  const core::Objective obj(d, timer);
  const core::VariationReport r = obj.evaluate(d, timer);
  std::printf("%s: %zu sinks, %zu buffers, %zu pairs, %.0f um wire\n",
              d.name.c_str(), d.tree.sinks().size(), d.tree.numBuffers(),
              d.pairs.size(), d.routing.totalWirelength());
  std::printf("  sum of normalized skew variations: %.1f ps\n",
              r.sum_variation_ps);
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    std::printf("  %s: local skew %.1f ps, alpha %.3f, power %.3f mW\n",
                tech.corner(d.corners[ki]).name.c_str(), r.local_skew_ps[ki],
                obj.alphas()[ki], sta::clockTreePowerMw(d, d.corners[ki]));
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const tech::TechModel tech = tech::TechModel::make28nm();

  if (cmd == "gen") {
    const auto flags = parseFlags(argc, argv, 2,
                                  {"testcase", "sinks", "pairs", "seed", "out"},
                                  {});
    if (!flags.count("testcase"))
      throw UsageError("gen requires --testcase");
    if (!flags.count("out")) throw UsageError("gen requires --out");
    testgen::TestcaseOptions o;
    o.sinks = parseCount(flags, "sinks", o.sinks);
    o.max_pairs = parseCount(flags, "pairs", o.max_pairs);
    o.seed = parseCount(flags, "seed", o.seed);
    const network::Design d =
        testgen::makeTestcase(tech, flags.at("testcase"), o);
    network::saveDesign(d, flags.at("out"));
    std::printf("wrote %s\n", flags.at("out").c_str());
    report(tech, d);
    return 0;
  }

  if (cmd == "report") {
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0)
      throw UsageError("report requires a design file");
    const auto flags = parseFlags(
        argc, argv, 3, {"check", "trace", "metrics", "log", "log-level"},
        {"detailed"});
    configureLogging(flags);
    ObsOutputs outputs(flags);
    const network::Design d = network::loadDesign(tech, argv[2]);
    // report is a read-only audit, so unlike optimize it does not throw on
    // findings: it prints the full diagnostic report and exits non-zero.
    const check::Level chk = parseCheckFlag(flags, check::Level::kCheap);
    if (chk != check::Level::kOff) {
      check::DiagnosticEngine engine;
      engine.setContext("cli:report");
      check::CheckOptions copts;
      copts.level = chk;
      check::checkDesign(d, copts, engine);
      if (chk >= check::Level::kDeep && !engine.hasErrors())
        check::checkDesignTiming(d, sta::Timer(tech), engine);
      if (!engine.empty())
        std::fprintf(stderr, "%s", engine.text().c_str());
      if (engine.hasErrors()) {
        std::fprintf(stderr, "skewopt_cli: %zu design check error(s)\n",
                     engine.errorCount());
        return 1;
      }
    }
    if (flags.count("detailed")) {
      const sta::Timer timer(tech);
      sta::writeTimingReport(std::cout, d, timer);
    } else {
      report(tech, d);
    }
    outputs.finish();
    return 0;
  }

  if (cmd == "diff") {
    if (argc < 4) throw UsageError("diff requires BEFORE and AFTER files");
    parseFlags(argc, argv, 4, {}, {});  // rejects any trailing arguments
    const network::Design before = network::loadDesign(tech, argv[2]);
    const network::Design after = network::loadDesign(tech, argv[3]);
    const network::EcoDiffStats stats =
        network::writeEcoScript(before, after, std::cout);
    std::fprintf(stderr, "%zu ECO commands\n", stats.total());
    return 0;
  }

  if (cmd == "optimize") {
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0)
      throw UsageError("optimize requires a design file");
    const auto flags = parseFlags(argc, argv, 3,
                                  {"flow", "iterations", "out", "check",
                                   "trace", "metrics", "record", "log",
                                   "log-level"},
                                  {"train"});
    configureLogging(flags);
    ObsOutputs outputs(flags);
    network::Design d = network::loadDesign(tech, argv[2]);

    core::FlowMode mode = core::FlowMode::kGlobalLocal;
    const std::string fm =
        flags.count("flow") ? flags.at("flow") : "global-local";
    if (fm == "global") mode = core::FlowMode::kGlobal;
    else if (fm == "local") mode = core::FlowMode::kLocal;
    else if (fm != "global-local")
      throw UsageError("--flow expects global|local|global-local, got '" +
                       fm + "'");

    core::DeltaLatencyModel model;
    const core::DeltaLatencyModel* model_ptr = nullptr;
    if (flags.count("train")) {
      std::printf("training delta-latency models...\n");
      core::TrainOptions t;
      t.cases = 24;
      t.moves_per_case = 24;
      model.train(tech, d.corners, t);
      model_ptr = &model;
    }

    const eco::StageDelayLut lut(tech);
    core::FlowOptions fopts;
    fopts.local.max_iterations =
        parseCount(flags, "iterations", fopts.local.max_iterations);
    // The flow's stage gates throw check::CheckFailure on a violation;
    // main()'s std::exception handler prints the SKW report and exits 1.
    fopts.check_level = parseCheckFlag(flags, fopts.check_level);
    fopts.record = flags.count("record") != 0;
    const core::Flow flow(tech, lut, fopts);
    const core::FlowResult r = flow.run(d, mode, model_ptr);

    if (fopts.record) {
      const std::string& path = flags.at("record");
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr ||
          std::fwrite(r.flight_record.data(), 1, r.flight_record.size(), f) !=
              r.flight_record.size() ||
          std::fputc('\n', f) == EOF || std::fclose(f) != 0)
        throw std::runtime_error("cannot write flight record: " + path);
      std::printf("wrote flight record %s\n", path.c_str());
    }

    std::printf("%s flow: %.1f -> %.1f ps (%.1f%% reduction)\n",
                core::flowModeName(mode), r.before.sum_variation_ps,
                r.after.sum_variation_ps,
                100.0 * (1.0 - r.after.sum_variation_ps /
                                   r.before.sum_variation_ps));
    report(tech, d);
    if (flags.count("out")) {
      network::saveDesign(d, flags.at("out"));
      std::printf("wrote %s\n", flags.at("out").c_str());
    }
    outputs.finish();
    return 0;
  }
  throw UsageError("unknown command '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "skewopt_cli: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "skewopt_cli: error: %s\n", e.what());
    return 1;
  }
}
