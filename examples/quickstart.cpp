// Quickstart: synthesize a small application-processor-like clock tree,
// measure its multi-corner skew variation, and run the global-local
// optimization flow on it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/flow.h"
#include "testgen/testgen.h"

using namespace skewopt;

int main() {
  // 1. Technology: the four signoff corners of the paper's Table 3 plus a
  //    five-size inverter library with NLDM tables.
  const tech::TechModel tech = tech::TechModel::make28nm();
  std::printf("technology: %zu corners, %zu inverter sizes\n",
              tech.numCorners(), tech.numCells());
  for (const tech::Corner& c : tech.corners())
    std::printf("  %-3s %s %.2fV %+5.0fC %s\n", c.name.c_str(),
                c.process == tech::Process::SS ? "ss" : "ff", c.voltage,
                c.temp_c, c.beol == tech::Beol::CMAX ? "Cmax" : "Cmin");

  // 2. Testcase: a scaled CLS1v1 (four ILM blocks, local + cross-block
  //    sequentially adjacent sink pairs) with a baseline CTS tree.
  testgen::TestcaseOptions topt;
  topt.sinks = 120;
  topt.max_pairs = 120;  // evaluation universe == optimized universe
  network::Design design = testgen::makeCls1(tech, "v1", topt);
  std::printf("\ndesign %s: %zu sinks, %zu clock buffers, %zu sink pairs\n",
              design.name.c_str(), design.tree.sinks().size(),
              design.tree.numBuffers(), design.pairs.size());

  // 3. Baseline multi-corner timing and skew-variation objective.
  const sta::Timer timer(tech);
  const core::Objective objective(design, timer);
  const core::VariationReport before = objective.evaluate(design, timer);
  std::printf("sum of normalized skew variations: %.1f ps\n",
              before.sum_variation_ps);
  for (std::size_t ki = 0; ki < design.corners.size(); ++ki)
    std::printf("  corner %s: local skew %.1f ps (alpha %.3f)\n",
                tech.corner(design.corners[ki]).name.c_str(),
                before.local_skew_ps[ki], objective.alphas()[ki]);

  // 4. Characterize the stage-delay LUTs once per technology, then run the
  //    full global-local flow (analytical predictor in this quickstart; see
  //    examples/appcore_cls1.cpp for the trained ML predictor).
  const eco::StageDelayLut lut(tech);
  core::FlowOptions fopts;
  fopts.local.max_iterations = 6;
  const core::Flow flow(tech, lut, fopts);
  const core::FlowResult result =
      flow.run(design, core::FlowMode::kGlobalLocal, nullptr);

  std::printf("\nglobal-local optimization:\n");
  std::printf("  global: LP %zu rows x %zu vars, %d simplex iterations, "
              "%zu arcs re-engineered\n",
              result.global.lp_rows, result.global.lp_vars,
              result.global.lp_iterations, result.global.arcs_changed);
  for (const core::LpSolveStats& st : result.global.lp_solves)
    std::printf("    LP %s U=%-7.0f %4d iters, %2d refactor, %s, "
                "solve %.1f ms, realize %.1f ms\n",
                st.u_ps == 0.0 ? "min-V" : "sweep", st.u_ps, st.iterations,
                st.refactorizations,
                st.warm_started ? "warm" : "cold", st.solve_ms,
                st.realize_ms);
  std::printf("    warm-start: %d hit(s), %d miss(es)\n",
              result.global.lp_warm_hits, result.global.lp_warm_misses);
  std::printf("  local : %zu committed moves, %zu golden evaluations\n",
              result.local.history.size(), result.local.golden_evaluations);
  std::printf("  sum variation %.1f -> %.1f ps (%.1f%% reduction)\n",
              result.before.sum_variation_ps, result.after.sum_variation_ps,
              100.0 * (1.0 - result.after.sum_variation_ps /
                                 result.before.sum_variation_ps));
  std::printf("  clock cells %zu -> %zu, power %.3f -> %.3f mW, "
              "area %.0f -> %.0f um^2\n",
              result.before.clock_cells, result.after.clock_cells,
              result.before.power_mw, result.after.power_mw,
              result.before.area_um2, result.after.area_um2);
  return 0;
}
